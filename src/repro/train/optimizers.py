"""Parameter-update rules: plain SGD, momentum, and sparse Adagrad.

Production DLRM trains embeddings with *stateless, linear* updates
(sparse SGD) and dense layers with stateful optimizers.  That split is not
an accident, and it matters for this paper:

**LazyDP requires the embedding update to be linear in the noise.**  The
lazy schedule applies ``sum_i eta * n_i`` instead of each ``eta * n_i``
individually; the two coincide exactly when the optimizer is linear
(plain SGD).  A stateful rule like Adagrad scales each increment by a
running statistic, so deferring noise would change the trained model —
which is why the paper (Algorithm 1, line 24) and this reproduction pin
embeddings to plain SGD under LazyDP, while dense parameters are free to
use any rule.  ``SparseAdagrad``/``Momentum`` are provided for the
non-private and eager-DP paths and as the executable demonstration of
that constraint (see ``tests/test_optimizers.py``).
"""

from __future__ import annotations

import numpy as np

from ..nn.parameter import Parameter


class DenseOptimizer:
    """Base class for dense (full-tensor) update rules."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Optimizer-state footprint (for the memory model)."""
        return 0


class DenseSGD(DenseOptimizer):
    """theta <- theta - lr * g  (stateless, linear)."""

    is_linear = True

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        param.data -= self.learning_rate * grad


class DenseMomentum(DenseOptimizer):
    """Polyak momentum: v <- mu v + g;  theta <- theta - lr v."""

    is_linear = False

    def __init__(self, learning_rate: float, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict = {}

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        velocity = self._velocity.get(param.name)
        if velocity is None:
            velocity = np.zeros_like(param.data)
        velocity = self.momentum * velocity + grad
        self._velocity[param.name] = velocity
        param.data -= self.learning_rate * velocity

    def state_bytes(self) -> int:
        return int(sum(v.nbytes for v in self._velocity.values()))


class SparseOptimizer:
    """Base class for row-sparse embedding update rules."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def update_rows(
        self, param: Parameter, rows: np.ndarray, values: np.ndarray
    ) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        return 0


class SparseSGD(SparseOptimizer):
    """table[rows] -= lr * values (stateless, linear).

    The only embedding rule compatible with lazy noise: applying a sum of
    deferred increments equals applying them one by one.
    """

    is_linear = True

    def update_rows(
        self, param: Parameter, rows: np.ndarray, values: np.ndarray
    ) -> None:
        param.data[rows] -= self.learning_rate * values


class SparseAdagrad(SparseOptimizer):
    """Row-sparse Adagrad, the common production choice for embeddings.

    Keeps one accumulator per table row (not per element, the "row-wise"
    variant DLRM uses) and scales updates by ``1/sqrt(acc + eps)``.
    NOT linear: deferring noise through this rule changes the result,
    which is exactly why LazyDP pins embeddings to ``SparseSGD``.
    """

    is_linear = False

    def __init__(self, learning_rate: float, epsilon: float = 1e-10):
        super().__init__(learning_rate)
        self.epsilon = float(epsilon)
        self._accumulators: dict = {}

    def _accumulator(self, param: Parameter) -> np.ndarray:
        acc = self._accumulators.get(param.name)
        if acc is None:
            acc = np.zeros(param.data.shape[0], dtype=np.float64)
            self._accumulators[param.name] = acc
        return acc

    def update_rows(
        self, param: Parameter, rows: np.ndarray, values: np.ndarray
    ) -> None:
        acc = self._accumulator(param)
        row_norm_sq = np.einsum("rd,rd->r", values, values) / values.shape[1]
        acc[rows] += row_norm_sq
        scale = self.learning_rate / np.sqrt(acc[rows] + self.epsilon)
        param.data[rows] -= scale[:, None] * values

    def state_bytes(self) -> int:
        return int(sum(a.nbytes for a in self._accumulators.values()))


def check_lazydp_compatible(optimizer) -> None:
    """Raise unless ``optimizer`` preserves LazyDP's deferral equivalence.

    Used by trainer assembly: handing LazyDP a non-linear embedding rule
    would silently break the paper's Section 5.1 equivalence argument, so
    it is rejected loudly instead.
    """
    if not getattr(optimizer, "is_linear", False):
        raise ValueError(
            f"{type(optimizer).__name__} is not linear in its increments; "
            "LazyDP's deferred noise requires a stateless linear embedding "
            "update (use SparseSGD). See repro.train.optimizers docs."
        )
