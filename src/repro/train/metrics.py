"""Evaluation metrics for CTR models, implemented from scratch.

The paper evaluates throughput, not utility, but its motivation rests on
the privacy-utility results of Denison et al. [13]; these metrics make
that axis measurable here (see ``examples/utility_vs_privacy.py``):

* ROC AUC — the standard CTR ranking metric, computed exactly via the
  Mann-Whitney statistic with proper tie handling;
* log loss — the (capped) BCE on probabilities;
* calibration — predicted-vs-observed positive rate per probability bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batch import Batch
from ..nn.dlrm import DLRM
from ..nn.functional import sigmoid


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Exact ROC AUC via the rank-sum (Mann-Whitney U) statistic.

    Ties in ``scores`` receive average ranks, matching
    ``sklearn.metrics.roc_auc_score``.  Requires both classes present.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError("labels and scores must be aligned 1-D arrays")
    positives = int(np.count_nonzero(labels == 1.0))
    negatives = int(np.count_nonzero(labels == 0.0))
    if positives + negatives != labels.size:
        raise ValueError("labels must be binary (0/1)")
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both classes present")

    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    ranks = np.empty(labels.size, dtype=np.float64)
    # Average ranks over tie groups.
    boundaries = np.nonzero(np.diff(sorted_scores))[0] + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [labels.size]))
    for start, end in zip(group_starts, group_ends):
        ranks[order[start:end]] = 0.5 * (start + 1 + end)
    rank_sum_positive = ranks[labels == 1.0].sum()
    u_statistic = rank_sum_positive - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))


def log_loss(
    labels: np.ndarray, probabilities: np.ndarray, epsilon: float = 1e-12
) -> float:
    """Mean binary cross-entropy on probabilities, clipped away from 0/1."""
    labels = np.asarray(labels, dtype=np.float64)
    probabilities = np.clip(
        np.asarray(probabilities, dtype=np.float64), epsilon, 1.0 - epsilon
    )
    if labels.shape != probabilities.shape:
        raise ValueError("labels and probabilities must be aligned")
    losses = -(
        labels * np.log(probabilities) + (1.0 - labels) * np.log(1.0 - probabilities)
    )
    return float(losses.mean())


@dataclass(frozen=True)
class CalibrationBin:
    lower: float
    upper: float
    count: int
    mean_predicted: float
    observed_rate: float


def calibration_bins(
    labels: np.ndarray, probabilities: np.ndarray, num_bins: int = 10
) -> list:
    """Reliability-diagram bins: predicted vs observed positive rate."""
    if num_bins < 1:
        raise ValueError("num_bins must be positive")
    labels = np.asarray(labels, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins = []
    for i in range(num_bins):
        lower, upper = edges[i], edges[i + 1]
        if i == num_bins - 1:
            mask = (probabilities >= lower) & (probabilities <= upper)
        else:
            mask = (probabilities >= lower) & (probabilities < upper)
        count = int(np.count_nonzero(mask))
        if count == 0:
            bins.append(CalibrationBin(lower, upper, 0, float("nan"), float("nan")))
        else:
            bins.append(
                CalibrationBin(
                    lower,
                    upper,
                    count,
                    float(probabilities[mask].mean()),
                    float(labels[mask].mean()),
                )
            )
    return bins


def expected_calibration_error(
    labels: np.ndarray, probabilities: np.ndarray, num_bins: int = 10
) -> float:
    """Count-weighted |predicted - observed| over calibration bins."""
    bins = calibration_bins(labels, probabilities, num_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return float("nan")
    weighted = sum(
        b.count * abs(b.mean_predicted - b.observed_rate) for b in bins if b.count > 0
    )
    return float(weighted / total)


def evaluate_model(model: DLRM, batches: list) -> dict:
    """AUC / log-loss / ECE of a model over held-out batches."""
    all_labels = []
    all_scores = []
    for batch in batches:
        if not isinstance(batch, Batch):
            raise TypeError("expected Batch instances")
        logits = model.forward(batch)
        all_labels.append(batch.labels)
        all_scores.append(sigmoid(logits))
    labels = np.concatenate(all_labels)
    scores = np.concatenate(all_scores)
    return {
        "auc": roc_auc(labels, scores),
        "log_loss": log_loss(labels, scores),
        "ece": expected_calibration_error(labels, scores),
        "examples": int(labels.size),
    }
