"""Training algorithms: SGD and the eager DP-SGD baseline family."""

from .common import (
    DPConfig,
    LAZYDP_OVERHEAD_STAGES,
    MODEL_UPDATE_STAGES,
    StageTimer,
    TrainerBase,
    TrainResult,
    merge_sparse_updates,
)
from .dpsgd import DPSGDBTrainer, DPSGDFTrainer, DPSGDRTrainer, EagerDPSGDBase
from .eana import EANATrainer
from .metrics import (
    calibration_bins,
    evaluate_model,
    expected_calibration_error,
    log_loss,
    roc_auc,
)
from .optimizers import (
    DenseMomentum,
    DenseSGD,
    SparseAdagrad,
    SparseSGD,
    check_lazydp_compatible,
)
from .schedules import (
    ConstantLR,
    LinearWarmupLR,
    LRSchedule,
    ScheduledDPSGDFTrainer,
    ScheduledLazyDPTrainer,
    StepDecayLR,
)
from .sgd import SGDTrainer

__all__ = [
    "DPConfig",
    "LAZYDP_OVERHEAD_STAGES",
    "MODEL_UPDATE_STAGES",
    "StageTimer",
    "TrainerBase",
    "TrainResult",
    "merge_sparse_updates",
    "DPSGDBTrainer",
    "DPSGDFTrainer",
    "DPSGDRTrainer",
    "EagerDPSGDBase",
    "EANATrainer",
    "DenseMomentum",
    "DenseSGD",
    "SparseAdagrad",
    "SparseSGD",
    "check_lazydp_compatible",
    "calibration_bins",
    "evaluate_model",
    "expected_calibration_error",
    "log_loss",
    "roc_auc",
    "ConstantLR",
    "LinearWarmupLR",
    "LRSchedule",
    "ScheduledDPSGDFTrainer",
    "ScheduledLazyDPTrainer",
    "StepDecayLR",
    "SGDTrainer",
]
