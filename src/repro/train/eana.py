"""EANA (Ning et al. [52]): noise only where the gradient is.

EANA sidesteps the dense noisy update by adding noise exclusively to the
embedding rows *accessed in the current iteration*.  That restores sparse
updates and high throughput — but breaks DP-SGD's guarantee: a row that no
example ever touches never moves, so the final table reveals which feature
values exist in the training data (paper Section 2.5; demonstrated by
``repro.privacy.audit``).  Implemented as the comparison point of
Figure 14.
"""

from __future__ import annotations


from .common import merge_sparse_updates
from .dpsgd import DPSGDFTrainer


class EANATrainer(DPSGDFTrainer):
    """DP-SGD(F) clipping pipeline with accessed-rows-only noise."""

    name = "eana"

    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        lr = self._learning_rate(iteration)
        with self.timer.time("noise_sampling"):
            noise_values = self.noise_stream.row_noise(
                table_index,
                sparse_grad.rows,
                iteration,
                bag.dim,
                std=noise_std,
            )
        with self.timer.time("noisy_grad_generation"):
            rows, values = merge_sparse_updates(
                sparse_grad.rows,
                sparse_grad.values,
                sparse_grad.rows,
                noise_values,
            )
        with self.timer.time("noisy_grad_update"):
            bag.table.data[rows] -= lr * values
