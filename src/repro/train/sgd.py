"""Non-private SGD: the paper's performance reference point.

SGD's embedding update is *sparse* (paper Figure 4a): only the rows
gathered during forward propagation receive gradient, so per-iteration
cost is a function of batch size and pooling factor — never of table size.
That flat cost profile is what every figure normalises against.
"""

from __future__ import annotations


from .common import TrainerBase


class SGDTrainer(TrainerBase):
    """Mini-batch SGD with mean-reduced loss and sparse embedding updates."""

    name = "sgd"
    is_private = False

    def train_step(self, iteration: int, batch, next_batch) -> float:
        with self.timer.time("fwd"):
            losses = self.model.loss(batch)
            mean_loss = float(losses.mean())

        with self.timer.time("bwd_per_batch"):
            dlogits = (
                self.model.loss_grad_per_example(batch)
                / self._batch_denominator(batch)
            )
            self.model.backward(dlogits)
            grads = self.model.batch_grads()

        self._apply_dense_plain_updates(
            {name: grads[name] for name in self.model.dense_parameters()},
            iteration,
        )

        lr = self._learning_rate(iteration)
        for bag in self.model.embeddings:
            sparse_grad = grads[bag.table.name]
            with self.timer.time("noisy_grad_update"):
                bag.table.data[sparse_grad.rows] -= lr * sparse_grad.values
        return mean_loss
