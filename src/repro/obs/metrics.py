"""Counters, gauges and streaming histograms for the training engines.

The registry is the structured side of the observability layer: where
the tracer answers *when*, the registry answers *how much* — staging
queue occupancy, async in-flight depth, per-shard skew, arena hit
rates.  It subsumes :class:`repro.train.common.StageTimer` (stage
seconds and event counters both land here via
:meth:`MetricsRegistry.absorb_stage_timer`) without replacing it:
StageTimer stays the single-writer per-thread accumulator the trainers
own, and the registry is the aggregation point reporting surfaces read.

Instruments:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge` — last-written value (collected engine statistics).
* :class:`Histogram` — streaming distribution over fixed log-spaced
  buckets; p50/p95/p99 come from bucket interpolation, with exact
  min/max kept so the tails never leave the observed range.  Bounded
  memory (one int per bucket), one ``log``-free bucket search per
  observation.

Like StageTimer, individual instruments follow the single-writer
convention (each is updated from one thread); the registry's maps are
guarded for concurrent *creation* so two threads asking for the same
name get the same instrument.
"""

from __future__ import annotations

import threading

#: Histogram bucket boundaries: 0, then powers of two from 2^-24
#: (~6e-8: well under a microsecond, the floor for durations) up to
#: 2^30 (~1e9: beyond any count or seconds value the engines produce).
_BUCKET_EXPONENT_LOW = -24
_BUCKET_EXPONENT_HIGH = 30


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += int(amount)


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution with fixed logarithmic buckets.

    Buckets: one for exact zero, one per power of two between
    ``2^-24`` and ``2^30``, one overflow.  Percentiles interpolate
    within the bucket containing the requested rank (log-linear), then
    clamp to the exact observed min/max — so quantile error is bounded
    by one octave and the extremes are exact.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        buckets = _BUCKET_EXPONENT_HIGH - _BUCKET_EXPONENT_LOW + 3
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _bucket_index(self, value: float) -> int:
        if value <= 0.0:
            return 0
        exponent = _BUCKET_EXPONENT_LOW
        bound = 2.0 ** _BUCKET_EXPONENT_LOW
        while value > bound:
            exponent += 1
            if exponent > _BUCKET_EXPONENT_HIGH:
                return len(self.counts) - 1
            bound *= 2.0
        return exponent - _BUCKET_EXPONENT_LOW + 1

    def observe(self, value) -> None:
        value = float(value)
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, fraction: float) -> float:
        """Approximate quantile at ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index == 0:
                    return max(0.0, self.min)
                if index == len(self.counts) - 1:
                    # Overflow bucket: unbounded above, so the only
                    # honest estimate is the exact observed maximum.
                    return self.max
                exponent = index - 1 + _BUCKET_EXPONENT_LOW
                lower = 2.0 ** (exponent - 1)
                upper = 2.0 ** exponent
                # Position of the requested rank inside this bucket.
                position = 1.0 - (cumulative - rank) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms behind get-or-create."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._lock = threading.Lock()

    def _instrument(self, table: dict, name: str, factory):
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.get(name)
                if instrument is None:
                    instrument = factory()
                    table[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(self._histograms, name, Histogram)

    # -- convenience writers ----------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        self.histogram(name).observe(value)

    # -- StageTimer subsumption -------------------------------------------
    def absorb_stage_timer(self, timer, prefix: str) -> None:
        """Fold a StageTimer's stage seconds and counters in under
        ``prefix`` (stages become gauges, counters add into counters)."""
        stats = timer.stats()
        for stage, seconds in stats["stage_seconds"].items():
            self.set_gauge(f"{prefix}.stage_seconds.{stage}", seconds)
        for name, value in stats["counters"].items():
            self.inc(f"{prefix}.{name}", value)

    def snapshot(self) -> dict:
        """JSON-serializable state of every instrument, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }
