"""Observability layer: thread-aware tracing + a metrics registry.

The LazyDP paper argues from stage-level breakdowns (Figures 3/5/11);
this package makes the reproduction's concurrency structure visible
the same way:

* :class:`Tracer` (``repro.obs.tracer``) — per-thread span recording
  exported as Chrome trace-event JSON for Perfetto/``chrome://tracing``,
  with one named track per engine thread (main loop, noise-prefetch
  worker, apply worker, shard executor threads).
* :class:`MetricsRegistry` (``repro.obs.metrics``) — counters, gauges
  and streaming histograms; subsumes ``StageTimer`` output and adds
  live engine gauges (staging occupancy, in-flight depth, shard skew,
  arena reuse, Philox launches, serving counters).
* :class:`Observability` (``repro.obs.hub``) — one tracer + one
  registry per run; trainers hold :data:`NULL_OBS` until
  ``instrument()`` is called, so the disabled path is a single
  attribute check.

Configured by :class:`repro.configs.ObservabilityConfig`, selected per
run via the ``obs=`` axis of ``repro.session.ExecutionPlan`` (e.g.
``--plan "pipeline=2,obs=trace+metrics"``) or the CLI's ``--trace``
flag; summarised offline by ``tools/trace_report.py`` and validated by
``tools/check_trace.py``.
"""

from .hub import NULL_OBS, Observability
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Tracer",
]
