"""The Observability hub: one tracer + one registry per training run.

``Observability`` bundles the two instruments behind the configuration
in :class:`repro.configs.ObservabilityConfig` and gives the engines a
single object to hold.  Trainers carry :data:`NULL_OBS` (the null
object) by default, so every instrumentation site in the engines is
gated by exactly one attribute check (``obs.enabled`` /
``obs.tracing``) and costs nothing when observability is off — the
acceptance bench (``benchmarks/bench_obs_overhead.py``) pins that.

Two kinds of collection feed the registry:

* **Live observations** during ``fit`` — the per-iteration engine
  gauges that are invisible after the fact: staging-buffer occupancy
  and prefetch hit/miss (pipeline), in-flight depth and staleness lag
  (async).  The engines call the ``observe_*`` helpers here so their
  own hot loops stay one ``if obs.enabled`` line.
* **Post-run collection** — :meth:`Observability.collect` walks the
  trainer's existing reporting surfaces (``kernel_stats``,
  ``pipeline_stats``, ``async_stats``, the shard timers, Philox launch
  counts) into gauges/counters once, after the last iteration.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .tracer import NULL_TRACER, Tracer


class Observability:
    """A run's tracer + metrics registry, built from its config."""

    enabled = True

    def __init__(self, config=None):
        from ..configs import ObservabilityConfig

        if config is None:
            config = ObservabilityConfig()
        if not isinstance(config, ObservabilityConfig):
            raise ValueError(
                "Observability expects an ObservabilityConfig "
                f"(got {type(config).__name__})"
            )
        self.config = config
        self.tracer = Tracer() if config.trace else NULL_TRACER
        self.metrics = MetricsRegistry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @property
    def metrics_enabled(self) -> bool:
        return self.config.metrics

    def timer_tracer(self):
        """What a StageTimer's ``tracer`` attribute should hold: the live
        tracer, or ``None`` (the timer's no-op sentinel) when disabled."""
        return self.tracer if self.tracer.enabled else None

    # -- live observations (called per iteration, pre-gated) ---------------
    def observe_staging(self, occupancy: int) -> None:
        """Staging-buffer state at the moment the trainer pops.

        Occupancy > 0 means the catch-up plan was already staged (a
        prefetch *hit* — the pop returns without a meaningful wait).
        """
        if self.config.metrics:
            metrics = self.metrics
            metrics.observe("pipeline.staging_occupancy", occupancy)
            if occupancy > 0:
                metrics.inc("pipeline.prefetch_hits")
            else:
                metrics.inc("pipeline.prefetch_misses")
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_counter("staging_occupancy", occupancy)

    def observe_inflight(self, depth: int, lag: int) -> None:
        """Async apply state at the start of a train step: outstanding
        applies (``depth``) and how many iterations the slab reads
        would trail without waiting (``lag``)."""
        if self.config.metrics:
            metrics = self.metrics
            metrics.observe("async.in_flight_depth", depth)
            metrics.observe("async.staleness_lag", lag)
        tracer = self.tracer
        if tracer.enabled:
            tracer.add_counter("in_flight", depth)

    # -- post-run collection ----------------------------------------------
    def collect(self, trainer, philox_launches: int | None = None) -> None:
        """Fold a trainer's reporting surfaces into the registry."""
        if not self.config.metrics:
            return
        metrics = self.metrics
        metrics.absorb_stage_timer(trainer.timer, "stages")
        if philox_launches is not None:
            metrics.set_gauge("rng.philox_launches", philox_launches)

        kernel_stats = getattr(trainer, "kernel_stats", None)
        if kernel_stats is not None:
            self._collect_kernel(kernel_stats())

        if hasattr(trainer, "shard_time_summary"):
            summary = trainer.shard_time_summary()
            skew = summary.get("skew")
            if skew is not None:
                metrics.set_gauge("shard.update_seconds_max", skew["max"])
                metrics.set_gauge("shard.update_seconds_min", skew["min"])
                metrics.set_gauge("shard.update_skew_seconds", skew["spread"])

        if (
            hasattr(trainer, "pipeline_stats")
            and getattr(trainer, "_worker", None) is not None
        ):
            stats = trainer.pipeline_stats()
            for key in (
                "prefetch_busy_seconds",
                "exposed_wait_seconds",
                "hidden_seconds",
                "hidden_fraction",
                "producer_stall_seconds",
            ):
                metrics.set_gauge(f"pipeline.{key}", stats[key])
            metrics.set_gauge("pipeline.plans_computed", stats["plans_computed"])

        if (
            hasattr(trainer, "async_stats")
            and getattr(trainer, "_apply_worker", None) is not None
        ):
            stats = trainer.async_stats()
            for key in (
                "applies_completed",
                "apply_busy_seconds",
                "submit_stall_seconds",
                "staleness_wait_seconds",
            ):
                if key in stats:
                    metrics.set_gauge(f"async.{key}", stats[key])

        if hasattr(trainer, "procshard_stats"):
            stats = trainer.procshard_stats()
            for worker in stats.get("workers", []):
                shard = worker.get("shard", 0)
                for key in ("pid", "messages", "samples_drawn"):
                    if key in worker:
                        metrics.set_gauge(
                            f"procshard.worker{shard}.{key}", worker[key]
                        )

    def _collect_kernel(self, stats: dict) -> None:
        metrics = self.metrics
        for arena_key in ("apply_arena", "sampler_arena"):
            arena = stats.get(arena_key)
            if arena:
                for field in ("hits", "allocs"):
                    if field in arena:
                        metrics.set_gauge(f"kernel.{arena_key}.{field}", arena[field])
        for arena_key in ("shard_apply_arenas", "shard_sampler_arenas"):
            arenas = stats.get(arena_key) or []
            totals: dict = {}
            for arena in arenas:
                for field in ("hits", "allocs"):
                    if field in arena:
                        totals[field] = totals.get(field, 0) + arena[field]
            for field, value in totals.items():
                metrics.set_gauge(f"kernel.{arena_key}.{field}", value)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable registry state plus trace bookkeeping."""
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.snapshot(),
            "trace": {
                "events_recorded": self.tracer.events_recorded,
                "events_dropped": self.tracer.events_dropped,
            },
        }

    def export_trace(self) -> dict:
        return self.tracer.export()

    def save_trace(self, path) -> int:
        """Write the Chrome trace-event JSON; returns the event count."""
        return self.tracer.save(path)


class _NullObservability:
    """Disabled observability: the default every trainer carries.

    All state is shared and inert — a single module-level instance
    serves every uninstrumented trainer, and the one metrics registry
    it exposes is a sink nobody reads (engines never write to it on
    gated paths; it exists so accidental un-gated access is safe
    rather than an AttributeError).
    """

    enabled = False
    tracing = False
    metrics_enabled = False
    config = None
    tracer = NULL_TRACER

    def __init__(self):
        self.metrics = MetricsRegistry()

    def timer_tracer(self):
        return None

    def observe_staging(self, occupancy: int) -> None:
        pass

    def observe_inflight(self, depth: int, lag: int) -> None:
        pass

    def collect(self, trainer, philox_launches=None) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "config": None,
            "metrics": self.metrics.snapshot(),
            "trace": {"events_recorded": 0, "events_dropped": 0},
        }

    def export_trace(self) -> dict:
        return NULL_TRACER.export()

    def save_trace(self, path) -> int:
        return NULL_TRACER.save(path)


NULL_OBS = _NullObservability()
