"""Thread-aware span tracer exporting Chrome trace-event JSON.

The tracer answers the question the flat :class:`repro.train.common.
StageTimer` cannot: *when* did each stage run, and on *which thread*?
The pipelined trainer's "100% hidden catch-up" claim, the async
trainer's in-flight overlap and the shard executor's fan-out all live
in the concurrency structure, so the tracer records every span as a
``(name, start, end, args)`` interval on the recording thread's own
track and exports the whole timeline in the Chrome trace-event format
(the ``{"traceEvents": [...]}`` JSON that Perfetto and
``chrome://tracing`` load directly).

Design constraints, in order:

* **Low overhead on the hot path.**  Recording is one
  ``perf_counter`` pair plus a list append into a per-thread buffer —
  no locks after a thread's first event, no dict building, no string
  formatting.  All formatting happens once, at :meth:`export`.
* **Thread awareness without registration.**  A thread's track is
  created lazily on its first event and named after the live
  ``threading.Thread`` — so the main loop, the ``noise-prefetch``
  worker, the ``lazydp-apply`` worker and every ``shard_N`` executor
  thread each get their own named track for free.
* **Bounded memory.**  Each track keeps at most ``max_events_per_
  thread`` events; past the cap new events are counted in
  ``events_dropped`` instead of stored, so a runaway loop degrades the
  trace rather than the process.

The disabled path is the null-object :class:`NullTracer` (module
singleton :data:`NULL_TRACER`): every method is a no-op and
``span(...)`` returns a shared reusable context manager, so leaving
trace calls compiled into the engines costs one attribute check.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Per-thread event cap (bounded memory).  At the smoke scale one
#: training iteration records tens of events; a quarter-million spans
#: per thread is hours of training before anything is dropped.
MAX_EVENTS_PER_THREAD = 262_144


class _Span:
    """Context manager recording one complete ("X") event on exit.

    Allocated per ``span(...)`` call on the traced path only; slots keep
    it to one small object with no dict.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer.add_complete(
            self._name, self._start, time.perf_counter(), self._args
        )
        return False


class _NullSpan:
    """Reusable no-op context manager (the disabled ``span`` result)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Track:
    """One thread's event buffer plus its exported identity."""

    __slots__ = ("tid", "name", "events", "dropped")

    def __init__(self, tid: int, name: str):
        self.tid = tid
        self.name = name
        #: Event tuples ``(phase, name, start, end_or_value, args)``.
        self.events: list = []
        self.dropped = 0


#: Exported names for threads whose Python names are implementation
#: details.  Worker threads (``noise-prefetch``, ``lazydp-apply``,
#: ``shard_N``) already carry meaningful names.
_THREAD_NAME_ALIASES = {"MainThread": "main-loop"}


class Tracer:
    """Records spans per thread; exports Chrome trace-event JSON.

    Clocks are ``time.perf_counter()`` (monotonic); exported timestamps
    are microseconds relative to the tracer's construction instant, so
    traces from one run share a common epoch across threads.
    """

    enabled = True

    def __init__(self, max_events_per_thread: int = MAX_EVENTS_PER_THREAD):
        if max_events_per_thread < 1:
            raise ValueError("max_events_per_thread must be positive")
        self._max_events = int(max_events_per_thread)
        self._epoch = time.perf_counter()
        #: thread ident -> _Track.  Reads on the hot path are lock-free
        #: (a dict lookup is atomic under the GIL); the lock only
        #: serialises track *creation* so tids are assigned uniquely.
        self._tracks: dict = {}
        self._lock = threading.Lock()

    # -- recording (hot path) ---------------------------------------------
    def _track(self) -> _Track:
        ident = threading.get_ident()
        track = self._tracks.get(ident)
        if track is None:
            with self._lock:
                track = self._tracks.get(ident)
                if track is None:
                    name = threading.current_thread().name
                    track = _Track(
                        tid=len(self._tracks),
                        name=_THREAD_NAME_ALIASES.get(name, name),
                    )
                    self._tracks[ident] = track
        return track

    def span(self, name: str, **args) -> _Span:
        """Context manager timing a span on the calling thread's track."""
        return _Span(self, name, args or None)

    def add_complete(
        self, name: str, start: float, end: float, args: dict | None = None
    ) -> None:
        """Record a complete event from an existing ``perf_counter`` pair.

        This is the zero-extra-clock-reads entry point: callers that
        already timed a region (``StageTimer.time``, the prefetch/apply
        workers' busy accounting) hand their start/end over so the trace
        and the accumulated seconds describe *exactly* the same interval.
        """
        track = self._track()
        if len(track.events) >= self._max_events:
            track.dropped += 1
            return
        track.events.append(("X", name, start, end, args))

    def _external_track(self, key: str, name: str | None) -> _Track:
        """The track for an *external* timeline (a shard worker process).

        External tracks are keyed by caller-chosen strings, which can
        never collide with ``threading.get_ident()`` ints, so a worker
        process's spans land on their own named track regardless of
        which parent thread feeds them in.
        """
        track = self._tracks.get(key)
        if track is None:
            with self._lock:
                track = self._tracks.get(key)
                if track is None:
                    track = _Track(tid=len(self._tracks), name=name or key)
                    self._tracks[key] = track
        return track

    def add_external_complete(
        self,
        key: str,
        name: str,
        start: float,
        end: float,
        args: dict | None = None,
        track_name: str | None = None,
    ) -> None:
        """Record a complete event on the external track ``key``.

        The process-shard router feeds worker-process span tuples
        through here: on Linux ``time.perf_counter()`` is the
        system-wide CLOCK_MONOTONIC, so worker timestamps share the
        parent tracer's epoch and line up against the main-loop track
        without any clock translation.
        """
        track = self._external_track(key, track_name)
        if len(track.events) >= self._max_events:
            track.dropped += 1
            return
        track.events.append(("X", name, start, end, args))

    def add_instant(self, name: str, **args) -> None:
        """Record an instant event (a point-in-time marker)."""
        track = self._track()
        if len(track.events) >= self._max_events:
            track.dropped += 1
            return
        track.events.append(
            ("i", name, time.perf_counter(), None, args or None)
        )

    def add_counter(self, name: str, value) -> None:
        """Record a counter sample (rendered as a filled graph track)."""
        track = self._track()
        if len(track.events) >= self._max_events:
            track.dropped += 1
            return
        track.events.append(
            ("C", name, time.perf_counter(), value, None)
        )

    # -- introspection -----------------------------------------------------
    @property
    def events_recorded(self) -> int:
        return sum(len(track.events) for track in self._tracks.values())

    @property
    def events_dropped(self) -> int:
        return sum(track.dropped for track in self._tracks.values())

    def track_names(self) -> list:
        """Exported track names in tid order (main thread first when it
        recorded first, which instrumented trainers guarantee)."""
        tracks = sorted(self._tracks.values(), key=lambda t: t.tid)
        return [track.name for track in tracks]

    # -- export ------------------------------------------------------------
    def export(self) -> dict:
        """The Chrome trace-event JSON object for everything recorded."""
        pid = os.getpid()
        epoch = self._epoch
        events: list = [{
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }]
        tracks = sorted(self._tracks.values(), key=lambda t: t.tid)
        for track in tracks:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": track.tid,
                "args": {"name": track.name},
            })
            events.append({
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": track.tid,
                "args": {"sort_index": track.tid},
            })
        for track in tracks:
            tid = track.tid
            for phase, name, start, end, args in track.events:
                timestamp = (start - epoch) * 1e6
                if phase == "X":
                    event = {
                        "name": name,
                        "cat": "stage",
                        "ph": "X",
                        "ts": timestamp,
                        "dur": (end - start) * 1e6,
                        "pid": pid,
                        "tid": tid,
                    }
                elif phase == "C":
                    event = {
                        "name": name,
                        "ph": "C",
                        "ts": timestamp,
                        "pid": pid,
                        "tid": tid,
                        "args": {"value": end},
                    }
                else:  # "i"
                    event = {
                        "name": name,
                        "ph": "i",
                        "s": "t",
                        "ts": timestamp,
                        "pid": pid,
                        "tid": tid,
                    }
                if args:
                    event["args"] = dict(args)
                events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"events_dropped": self.events_dropped},
        }

    def save(self, path) -> int:
        """Write :meth:`export` to ``path``; returns the event count."""
        payload = self.export()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])


class NullTracer:
    """Disabled tracer: every method is a no-op (null-object pattern).

    Engines keep an unconditional ``tracer`` attribute and call it
    freely on cold paths; hot paths gate on ``tracer.enabled`` (or hold
    ``None`` via :meth:`repro.obs.Observability.timer_tracer`) so the
    disabled cost is one attribute check.
    """

    enabled = False

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def add_complete(self, name, start, end, args=None) -> None:
        pass

    def add_external_complete(
        self, key, name, start, end, args=None, track_name=None
    ) -> None:
        pass

    def add_instant(self, name, **args) -> None:
        pass

    def add_counter(self, name, value) -> None:
        pass

    @property
    def events_recorded(self) -> int:
        return 0

    @property
    def events_dropped(self) -> int:
        return 0

    def track_names(self) -> list:
        return []

    def export(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"events_dropped": 0}}

    def save(self, path) -> int:
        raise RuntimeError(
            "tracing is disabled (NullTracer); enable it with "
            "ObservabilityConfig(trace=True) / plan spec obs=trace"
        )


NULL_TRACER = NullTracer()
