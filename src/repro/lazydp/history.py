"""The HistoryTable (paper Algorithm 1, lines 1-2 and 13-16).

Tracks, per embedding row, the latest iteration whose noise has been
applied.  The paper explicitly rejects the naive per-row *counter* design —
incrementing a counter for every non-accessed row would itself be a dense
write — in favour of storing the last-updated iteration ID and deriving the
number of delayed updates by subtraction, so writes stay proportional to
the sparse access footprint (Section 5.2.1).

Storage is 4 bytes per row (int32), matching the paper's Section 7.2
overhead arithmetic (751 MB for the 96 GB model).
"""

from __future__ import annotations

import numpy as np


class HistoryTable:
    """Last-noise-updated iteration per embedding row."""

    BYTES_PER_ENTRY = 4

    def __init__(self, num_rows: int):
        if num_rows < 1:
            raise ValueError("num_rows must be positive")
        # Zero means "all noise through iteration 0 applied", i.e. none —
        # iterations are 1-based (Algorithm 1's loop runs iter = 1..N).
        self._last_updated = np.zeros(num_rows, dtype=np.int32)

    @classmethod
    def attach(cls, storage: np.ndarray) -> "HistoryTable":
        """A HistoryTable over caller-owned int32 storage, zero-copy.

        The process-shard backend (``repro.procshard``) places each
        shard's history window in ``multiprocessing.shared_memory`` so
        the router and the shard's worker process read and advance the
        *same* entries; both sides wrap their mapping of the segment
        with ``attach``.  The storage must be a writable, C-contiguous
        int32 vector; it is used in place, never copied, and the caller
        keeps responsibility for its lifetime.
        """
        storage = np.asarray(storage)
        if storage.dtype != np.int32 or storage.ndim != 1:
            raise ValueError("attach expects a 1-D int32 vector")
        if storage.size < 1:
            raise ValueError("num_rows must be positive")
        if not storage.flags.writeable or not storage.flags.c_contiguous:
            raise ValueError("attach expects writable contiguous storage")
        table = cls.__new__(cls)
        table._last_updated = storage
        return table

    @property
    def num_rows(self) -> int:
        return self._last_updated.shape[0]

    @property
    def nbytes(self) -> int:
        return self._last_updated.nbytes

    def last_updated(self, rows: np.ndarray) -> np.ndarray:
        return self._last_updated[np.asarray(rows, dtype=np.int64)]

    def delays(self, rows: np.ndarray, iteration: int) -> np.ndarray:
        """Number of deferred noise updates for ``rows`` as of ``iteration``.

        ``delays[k] = iteration - HistoryTable[rows[k]]`` (Algorithm 1,
        line 14).
        """
        rows = np.asarray(rows, dtype=np.int64)
        delays = np.int64(iteration) - self._last_updated[rows].astype(np.int64)
        if np.any(delays < 0):
            raise ValueError(
                "HistoryTable is ahead of the requested iteration; "
                "rows must not be caught up twice in one iteration"
            )
        return delays

    def mark_updated(self, rows: np.ndarray, iteration: int) -> None:
        """Record that ``rows`` now carry all noise through ``iteration``."""
        self._last_updated[np.asarray(rows, dtype=np.int64)] = np.int32(iteration)

    def pending_rows(self, iteration: int) -> np.ndarray:
        """All rows still owed noise as of ``iteration`` (used by flush)."""
        return np.nonzero(self._last_updated < np.int32(iteration))[0]

    def snapshot(self) -> np.ndarray:
        """Copy of the raw table (tests and diagnostics)."""
        return self._last_updated.copy()

    def load_snapshot(self, snapshot: np.ndarray) -> None:
        """Restore the table from a :meth:`snapshot` (checkpoint resume)."""
        snapshot = np.asarray(snapshot, dtype=np.int32)
        if snapshot.shape != self._last_updated.shape:
            raise ValueError("snapshot size does not match table")
        self._last_updated[...] = snapshot


class NaiveCounterHistory:
    """The design Algorithm 1 *rejects*: a per-row pending-update counter.

    Incrementing a counter for every non-accessed row is a dense write
    over the whole table each iteration — reintroducing exactly the
    memory traffic LazyDP exists to remove (paper Section 5.2.1: "such
    naive implementation will lead to significant memory write traffic").
    Implemented for the ablation benchmark
    (``benchmarks/bench_ablation_history.py``), which shows its per-
    iteration cost scaling with table size while :class:`HistoryTable`'s
    stays proportional to the access footprint.

    Semantically equivalent to :class:`HistoryTable` (verified in tests);
    only the access pattern differs.
    """

    BYTES_PER_ENTRY = 4

    def __init__(self, num_rows: int):
        if num_rows < 1:
            raise ValueError("num_rows must be positive")
        self._pending = np.zeros(num_rows, dtype=np.int32)
        self._iteration = 0

    @property
    def num_rows(self) -> int:
        return self._pending.shape[0]

    @property
    def nbytes(self) -> int:
        return self._pending.nbytes

    def advance_iteration(self) -> None:
        """The dense write: every row's pending counter increments."""
        self._pending += np.int32(1)  # touches the entire table
        self._iteration += 1

    def delays(self, rows: np.ndarray, iteration: int) -> np.ndarray:
        if iteration != self._iteration:
            raise ValueError(
                "naive counter must be advanced to the queried iteration"
            )
        return self._pending[np.asarray(rows, dtype=np.int64)].astype(np.int64)

    def mark_updated(self, rows: np.ndarray, iteration: int) -> None:
        if iteration != self._iteration:
            raise ValueError(
                "naive counter must be advanced to the update iteration"
            )
        self._pending[np.asarray(rows, dtype=np.int64)] = 0

    def pending_rows(self, iteration: int) -> np.ndarray:
        if iteration != self._iteration:
            raise ValueError(
                "naive counter must be advanced to the queried iteration"
            )
        return np.nonzero(self._pending > 0)[0]
