"""Checkpointing and model release for LazyDP training.

LazyDP introduces a subtlety that eager DP-SGD does not have: between
iterations, embedding tables are *behind* on noise by design.  Persisting
or publishing them naively would leak which rows were recently accessed —
the very signal the threat model (paper Section 3) says the adversary may
inspect.  Two distinct operations are therefore provided:

* :func:`save_checkpoint` / :func:`load_checkpoint` — **resume** support:
  persists the raw (lazy) tables *together with* the HistoryTables and
  iteration counter, so training continues exactly where it stopped.
  The checkpoint file itself must be treated as training state, not as a
  released model.
* :func:`export_private_model` — **release** support: returns a copy of
  the parameters with every pending noise update applied (the terminal
  flush of Algorithm 1, without mutating the live training state), i.e.
  the artifact that is safe to publish and distributionally identical to
  eager DP-SGD's model at that iteration.

Checkpoints are ``.npz`` archives; geometry is validated on load.
"""

from __future__ import annotations

import numpy as np

from .trainer import LazyDPTrainer

_FORMAT_VERSION = 1


def save_checkpoint(path, trainer: LazyDPTrainer, iteration: int) -> None:
    """Persist model parameters, HistoryTables and progress to ``path``."""
    if iteration < 0:
        raise ValueError("iteration must be non-negative")
    arrays = {
        "meta/version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "meta/iteration": np.array([iteration], dtype=np.int64),
        "meta/use_ans": np.array([int(trainer.use_ans)], dtype=np.int64),
        "meta/noise_seed": np.array([trainer.noise_stream.seed], dtype=np.int64),
    }
    for name, param in trainer.model.parameters().items():
        arrays[f"param/{name}"] = param.data
    for index, history in enumerate(trainer.engine.histories):
        arrays[f"history/{index}"] = history.snapshot()
    np.savez_compressed(path, **arrays)


def load_checkpoint(path, trainer: LazyDPTrainer) -> int:
    """Restore ``trainer`` (in place) from ``path``; returns the iteration.

    The trainer must be built over a model with the same geometry and the
    same ANS mode; mismatches raise rather than silently corrupting the
    privacy bookkeeping.
    """
    with np.load(path) as archive:
        version = int(archive["meta/version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {version}")
        if bool(archive["meta/use_ans"][0]) != trainer.use_ans:
            raise ValueError("checkpoint ANS mode does not match trainer")
        if int(archive["meta/noise_seed"][0]) != trainer.noise_stream.seed:
            raise ValueError(
                "checkpoint noise seed does not match trainer; resuming "
                "with a different stream would break DP bookkeeping"
            )
        iteration = int(archive["meta/iteration"][0])

        params = trainer.model.parameters()
        for name, param in params.items():
            key = f"param/{name}"
            if key not in archive:
                raise ValueError(f"checkpoint missing parameter {name}")
            stored = archive[key]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint "
                    f"{stored.shape} vs model {param.data.shape}"
                )
            param.data[...] = stored

        for index, history in enumerate(trainer.engine.histories):
            key = f"history/{index}"
            if key not in archive:
                raise ValueError(f"checkpoint missing history table {index}")
            stored = archive[key]
            if stored.shape[0] != history.num_rows:
                raise ValueError(
                    f"history table {index} size mismatch: checkpoint "
                    f"{stored.shape[0]} vs model {history.num_rows}"
                )
            history.load_snapshot(stored)
    return iteration


def export_private_model(
    trainer: LazyDPTrainer, iteration: int, noise_std: float | None = None
) -> dict:
    """A flushed copy of all parameters, safe to release at ``iteration``.

    Performs Algorithm 1's terminal catch-up on copies: every embedding
    row receives its deferred noise through ``iteration``.  The live
    trainer (tables, HistoryTables) is left untouched so training can
    continue afterwards — this is how one publishes periodic model
    snapshots during a long run without breaking the lazy schedule.
    """
    if noise_std is None:
        noise_std = trainer._last_noise_std
    if noise_std is None:
        raise ValueError("noise_std unknown: train at least one step or pass it in")
    released = {
        name: param.data.copy()
        for name, param in trainer.model.parameters().items()
    }
    lr = trainer.config.learning_rate
    for table_index, bag in enumerate(trainer.model.embeddings):
        history = trainer.engine.histories[table_index]
        pending = history.pending_rows(iteration)
        if pending.size == 0:
            continue
        delays = history.delays(pending, iteration)
        noise = trainer.engine.ans.catchup_noise(
            table_index, pending, delays, iteration, bag.dim, noise_std
        )
        released[bag.table.name][pending] -= lr * noise
    return released
