"""The lazy noise update engine (paper Algorithm 1).

``LazyNoiseEngine`` owns one :class:`HistoryTable` per embedding table and
an :class:`ANSEngine`, and produces the sparse catch-up noise for the rows
the *next* mini-batch will gather.  The trainer merges that noise with the
current batch's clipped gradient into one sparse write (Algorithm 1,
lines 19-25), and calls :meth:`flush` once at the end of training so the
released model carries every row's full noise history — without the flush,
the final table would not match eager DP-SGD (DESIGN.md, deviations).
"""

from __future__ import annotations

import numpy as np

from ..kernels import BufferArena, apply_sparse_update
from ..nn.dlrm import DLRM
from ..rng import NoiseStream
from .ans import ANSEngine
from .history import HistoryTable


class LazyNoiseEngine:
    """Deferred-noise bookkeeping and catch-up for all embedding tables."""

    def __init__(
        self,
        model: DLRM,
        noise_stream: NoiseStream,
        use_ans: bool = True,
        flush_chunk_rows: int = 65536,
    ):
        self.model = model
        self.ans = ANSEngine(noise_stream, enabled=use_ans)
        self.histories = [HistoryTable(bag.num_rows) for bag in model.embeddings]
        self.flush_chunk_rows = int(flush_chunk_rows)
        self.flushed_through: int | None = None
        #: Scratch for the flush's slab writes; chunked walks reuse it.
        self.arena = BufferArena()

    @property
    def use_ans(self) -> bool:
        return self.ans.enabled

    def history_bytes(self) -> int:
        """Total HistoryTable footprint (paper Section 7.2)."""
        return int(sum(history.nbytes for history in self.histories))

    def catchup_for_next_access(
        self,
        table_index: int,
        next_rows: np.ndarray,
        iteration: int,
        dim: int,
        std: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Catch-up noise for rows the next iteration will gather.

        Returns ``(rows, delays, noise_values)`` where ``noise_values`` is
        the deferred noise through ``iteration`` for each row.  Also
        advances the HistoryTable (Algorithm 1, line 15).
        """
        if self.flushed_through is not None:
            raise RuntimeError("engine already flushed; training has ended")
        history = self.histories[table_index]
        next_rows = np.asarray(next_rows, dtype=np.int64)
        delays = history.delays(next_rows, iteration)
        history.mark_updated(next_rows, iteration)
        noise = self.ans.catchup_noise(
            table_index, next_rows, delays, iteration, dim, std
        )
        return next_rows, delays, noise

    def flush(self, final_iteration: int, learning_rate: float, std: float) -> int:
        """Apply all still-deferred noise so the model matches eager DP-SGD.

        Walks every table in bounded-size row chunks (the real system
        streams this, Section 5.2.1 requires it only before rows become
        visible).  Returns the number of rows that needed catching up.
        """
        caught_up = 0
        for table_index, bag in enumerate(self.model.embeddings):
            history = self.histories[table_index]
            pending = history.pending_rows(final_iteration)
            for start in range(0, pending.size, self.flush_chunk_rows):
                rows = pending[start : start + self.flush_chunk_rows]
                delays = history.delays(rows, final_iteration)
                noise = self.ans.catchup_noise(
                    table_index, rows, delays, final_iteration, bag.dim, std
                )
                apply_sparse_update(
                    bag.table.data,
                    rows,
                    noise,
                    learning_rate,
                    arena=self.arena,
                    values_writable=True,
                )
                history.mark_updated(rows, final_iteration)
            caught_up += int(pending.size)
        self.flushed_through = int(final_iteration)
        return caught_up
