"""The user-facing LazyDP API (paper Figure 9a).

Mirrors Opacus' ``PrivacyEngine.make_private``: wrap an existing model and
data loader, pick the DP hyper-parameters, and get back a private training
session.  The paper's wrapper returns LazyDP-enabled ``(model, optimizer,
data_loader)`` instances; ours bundles them into a
:class:`PrivateTrainingSession` whose ``fit`` runs Algorithm 1 end-to-end
(including the terminal flush) and whose ``epsilon`` reports the budget
spent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.loader import DataLoader
from ..nn.dlrm import DLRM
from ..train.common import DPConfig, TrainResult
from .trainer import LazyDPTrainer


@dataclass
class PrivateTrainingSession:
    """A model + loader + LazyDP trainer, ready to ``fit``."""

    model: DLRM
    data_loader: DataLoader
    trainer: LazyDPTrainer

    def fit(self) -> TrainResult:
        return self.trainer.fit(self.data_loader)

    def epsilon(self, delta: float | None = None) -> float:
        """Privacy spent so far at the given (or configured) delta."""
        if self.trainer.accountant is None or self.trainer.accountant.steps == 0:
            raise RuntimeError("no private steps have been taken yet")
        target_delta = delta if delta is not None else self.trainer.config.delta
        return self.trainer.accountant.get_epsilon(target_delta)


def make_private(
    module: DLRM,
    data_loader: DataLoader,
    *,
    noise_multiplier: float = 1.1,
    max_gradient_norm: float = 1.0,
    learning_rate: float = 0.05,
    delta: float = 1e-5,
    use_ans: bool = True,
    noise_seed: int = 1234,
) -> PrivateTrainingSession:
    """Transform a model + loader into a LazyDP private training session.

    Parameters follow the paper's wrapper (Figure 9a): ``noise_multiplier``
    is sigma, ``max_gradient_norm`` is the clipping threshold C.  Set
    ``use_ans=False`` to run the lazy-update-only ablation (Figure 10's
    "LazyDP w/o ANS").
    """
    config = DPConfig(
        noise_multiplier=noise_multiplier,
        max_grad_norm=max_gradient_norm,
        learning_rate=learning_rate,
        delta=delta,
    )
    trainer = LazyDPTrainer(module, config, noise_seed=noise_seed, use_ans=use_ans)
    return PrivateTrainingSession(
        model=module, data_loader=data_loader, trainer=trainer
    )
