"""The LazyDP trainer: DP-SGD(F)'s clipping pipeline + lazy sparse noise.

Forward and backward propagation are untouched relative to the strongest
eager baseline (Algorithm 1, lines 8-10 — "identical to standard DP-SGD");
only the embedding model-update changes:

1. dedup the next mini-batch's indices         (``lazydp_dedup``)
2. read HistoryTable, compute delays/ANS stds  (``lazydp_history_read``)
3. write back the new iteration ids            (``lazydp_history_update``)
4. draw catch-up noise for next-accessed rows  (``noise_sampling``)
5. merge with the current clipped gradient     (``noisy_grad_generation``)
6. one sparse write to the table               (``noisy_grad_update``)

Those first three stages are the "pure LazyDP-introduced latency overhead"
of Figure 11 (61% / 22% / 17% split).  ``finalize`` flushes all remaining
deferred noise so the *released* model is distributed exactly as eager
DP-SGD's — the property the threat model of Section 3 rests on.

Stages 1-4 form the catch-up's **plan + sample** phase and stages 5-6 its
**apply** phase; the code keeps them in separate methods
(``_plan_catchup`` / ``_sample_catchup`` / ``_apply_staged_noise``) so
subclasses can re-site the phases without reimplementing them:

* :class:`repro.shard.trainer.ShardedLazyDPTrainer` runs all six stages
  per *shard* through a pluggable executor;
* :class:`repro.pipeline.trainer.PipelinedLazyDPTrainer` moves plan +
  sample onto a background prefetch worker so only the apply phase stays
  on the critical path.

Both release bitwise-identical parameters to this serial trainer: the
noise bits depend only on ``(seed, table, row, iteration)`` and the
delays, never on where or when they are drawn.  This class is also the
*core* the session builder (:mod:`repro.session`) stacks its capability
layers on — every :class:`repro.session.ExecutionPlan` bottoms out here.
"""

from __future__ import annotations

import numpy as np

from ..kernels import BufferArena, fused_noisy_update
from ..train.common import DPConfig
from ..train.dpsgd import DPSGDFTrainer
from .ans import CatchupPlan, plan_catchup
from .optimizer import LazyNoiseEngine


class LazyDPTrainer(DPSGDFTrainer):
    """LazyDP with (default) or without aggregated noise sampling."""

    name = "lazydp"

    def __init__(
        self, model, config: DPConfig, noise_seed: int = 1234, use_ans: bool = True
    ):
        super().__init__(model, config, noise_seed)
        self.engine = self._build_engine(model, use_ans)
        self.use_ans = use_ans
        if not use_ans:
            self.name = "lazydp_no_ans"
        self._next_batch = None
        self._last_noise_std: float | None = None
        #: Scratch for the fused apply kernel, reused across iterations
        #: so the steady-state apply allocates nothing.  Single-writer:
        #: the thread running the apply phase (the trainer thread here;
        #: the apply worker during an async fit — never both at once).
        self.arena = BufferArena()

    def _build_engine(self, model, use_ans: bool):
        """Engine factory hook; the sharded trainer overrides it."""
        return LazyNoiseEngine(model, self.noise_stream, use_ans=use_ans)

    def train_step(self, iteration: int, batch, next_batch) -> float:
        self._next_batch = next_batch
        loss = super().train_step(iteration, batch, next_batch)
        # Recorded here (not only in fit) so manually-stepped trainers
        # advance the marker attached serving engines watch.
        self.last_iteration = int(iteration)
        return loss

    def current_iteration(self) -> int:
        """The iteration the model stands at — the single definition the
        release and serving paths share.

        The max of the last stepped and last flushed iteration: after a
        fit the flush marker leads the step marker, but when training
        resumes past a flush the step marker leads again — releasing or
        serving at the stale flush point would drop the resumed steps'
        deferred-noise accounting.
        """
        current = int(self.last_iteration)
        flushed = self.engine.flushed_through
        if flushed is not None:
            current = max(current, int(flushed))
        return current

    # -- the three phases of the lazy catch-up -----------------------------
    def _plan_catchup(
        self, table_index: int, next_rows, iteration: int, timer
    ) -> CatchupPlan:
        """Plan phase (stages 2-3): read delays, advance the history.

        Runs on whichever thread owns the HistoryTables — the trainer
        thread here, the prefetch worker in the pipelined subclass.
        """
        return plan_catchup(
            self.engine.histories[table_index],
            table_index,
            next_rows,
            iteration,
            timer=timer,
        )

    def _sample_catchup(
        self, plan: CatchupPlan, dim: int, noise_std: float, timer
    ) -> np.ndarray:
        """Sample phase (stage 4): draw the plan's catch-up noise."""
        with timer.time("noise_sampling"):
            return self.engine.ans.sample(plan, dim, noise_std)

    def _apply_staged_noise(
        self, bag, sparse_grad, noise_rows, noise_values, timer=None
    ) -> None:
        """Apply phase (stages 5-6): merge with the clipped gradient and
        perform the one sparse write — one fused kernel call
        (:func:`repro.kernels.fused_noisy_update`), still attributed to
        the two stage timers the figures expect.

        ``timer`` defaults to the trainer-thread StageTimer; the async
        trainer passes its apply-thread timer instead so the two threads
        never write the same StageTimer concurrently.
        """
        timer = timer or self.timer
        fused_noisy_update(
            bag.table.data,
            self.config.learning_rate,
            sparse_grad.rows,
            sparse_grad.values,
            noise_rows,
            noise_values,
            arena=self.arena,
            timer=timer,
        )

    # Override the dense noisy embedding update with the lazy sparse one.
    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        self._last_noise_std = noise_std

        if self._next_batch is not None:
            with self.timer.time("lazydp_dedup"):
                next_rows = self._next_batch.accessed_rows(table_index)
            plan = self._plan_catchup(table_index, next_rows, iteration, self.timer)
            noise_values = self._sample_catchup(plan, bag.dim, noise_std, self.timer)
            noise_rows = plan.rows
        else:
            # Final iteration: no lookahead exists; the terminal flush
            # performs every remaining catch-up.
            noise_rows = np.empty(0, dtype=np.int64)
            noise_values = np.zeros((0, bag.dim), dtype=np.float64)

        self._apply_staged_noise(bag, sparse_grad, noise_rows, noise_values)

    def kernel_stats(self) -> dict:
        """Apply-kernel instrumentation: arena reuse and timer counters.

        ``apply_arena`` should show ``allocs`` frozen and ``hits``
        growing once the steady state is reached — the zero-allocation
        hot path the fused kernels exist for.
        """
        return {
            "apply_arena": self.arena.stats(),
            "sampler_arena": self.engine.ans.arena.stats(),
            "timer_counters": dict(self.timer.counters),
        }

    def _flush_noise_std(self) -> float:
        """Per-iteration noise std for the terminal flush.

        Normally the std observed on the last training step; when no step
        ran (finalize-before-step, e.g. resuming just to release a model)
        fall back to the configured std at the expected batch size,
        guarding against ``expected_batch_size`` being unset or zero.
        """
        if self._last_noise_std is not None:
            return self._last_noise_std
        denominator = max(int(self.expected_batch_size or 0), 1)
        return self.config.noise_std(denominator)

    def finalize(self, final_iteration: int) -> None:
        """Flush all deferred noise so the released model matches DP-SGD."""
        if final_iteration == 0:
            return
        noise_std = self._flush_noise_std()
        # The flush is a one-time end-of-training cost (it makes the
        # *released* model match DP-SGD), so it gets its own stage rather
        # than polluting the per-iteration noise-sampling numbers.
        with self.timer.time("terminal_flush"):
            self.engine.flush(final_iteration, self.config.learning_rate, noise_std)
