"""The LazyDP trainer: DP-SGD(F)'s clipping pipeline + lazy sparse noise.

Forward and backward propagation are untouched relative to the strongest
eager baseline (Algorithm 1, lines 8-10 — "identical to standard DP-SGD");
only the embedding model-update changes:

1. dedup the next mini-batch's indices         (``lazydp_dedup``)
2. read HistoryTable, compute delays/ANS stds  (``lazydp_history_read``)
3. write back the new iteration ids            (``lazydp_history_update``)
4. draw catch-up noise for next-accessed rows  (``noise_sampling``)
5. merge with the current clipped gradient     (``noisy_grad_generation``)
6. one sparse write to the table               (``noisy_grad_update``)

Those first three stages are the "pure LazyDP-introduced latency overhead"
of Figure 11 (61% / 22% / 17% split).  ``finalize`` flushes all remaining
deferred noise so the *released* model is distributed exactly as eager
DP-SGD's — the property the threat model of Section 3 rests on.
"""

from __future__ import annotations

import numpy as np

from ..train.common import DPConfig, merge_sparse_updates
from ..train.dpsgd import DPSGDFTrainer
from .optimizer import LazyNoiseEngine


class LazyDPTrainer(DPSGDFTrainer):
    """LazyDP with (default) or without aggregated noise sampling."""

    name = "lazydp"

    def __init__(self, model, config: DPConfig, noise_seed: int = 1234,
                 use_ans: bool = True):
        super().__init__(model, config, noise_seed)
        self.engine = self._build_engine(model, use_ans)
        self.use_ans = use_ans
        if not use_ans:
            self.name = "lazydp_no_ans"
        self._next_batch = None
        self._last_noise_std: float | None = None

    def _build_engine(self, model, use_ans: bool):
        """Engine factory hook; the sharded trainer overrides it."""
        return LazyNoiseEngine(model, self.noise_stream, use_ans=use_ans)

    def train_step(self, iteration: int, batch, next_batch) -> float:
        self._next_batch = next_batch
        return super().train_step(iteration, batch, next_batch)

    # Override the dense noisy embedding update with the lazy sparse one.
    def _apply_embedding_dense_noisy_update(self, table_index: int, bag,
                                            sparse_grad, iteration: int,
                                            noise_std: float) -> None:
        self._last_noise_std = noise_std
        lr = self.config.learning_rate

        if self._next_batch is not None:
            with self.timer.time("lazydp_dedup"):
                next_rows = self._next_batch.accessed_rows(table_index)
            with self.timer.time("lazydp_history_read"):
                history = self.engine.histories[table_index]
                delays = history.delays(next_rows, iteration)
            with self.timer.time("lazydp_history_update"):
                history.mark_updated(next_rows, iteration)
            with self.timer.time("noise_sampling"):
                noise_values = self.engine.ans.catchup_noise(
                    table_index, next_rows, delays, iteration,
                    bag.dim, noise_std,
                )
        else:
            # Final iteration: no lookahead exists; the terminal flush
            # performs every remaining catch-up.
            next_rows = np.empty(0, dtype=np.int64)
            noise_values = np.zeros((0, bag.dim), dtype=np.float64)

        with self.timer.time("noisy_grad_generation"):
            rows, values = merge_sparse_updates(
                sparse_grad.rows, sparse_grad.values,
                next_rows, noise_values,
            )
        with self.timer.time("noisy_grad_update"):
            bag.table.data[rows] -= lr * values

    def _flush_noise_std(self) -> float:
        """Per-iteration noise std for the terminal flush.

        Normally the std observed on the last training step; when no step
        ran (finalize-before-step, e.g. resuming just to release a model)
        fall back to the configured std at the expected batch size,
        guarding against ``expected_batch_size`` being unset or zero.
        """
        if self._last_noise_std is not None:
            return self._last_noise_std
        denominator = max(int(self.expected_batch_size or 0), 1)
        return self.config.noise_std(denominator)

    def finalize(self, final_iteration: int) -> None:
        """Flush all deferred noise so the released model matches DP-SGD."""
        if final_iteration == 0:
            return
        noise_std = self._flush_noise_std()
        # The flush is a one-time end-of-training cost (it makes the
        # *released* model match DP-SGD), so it gets its own stage rather
        # than polluting the per-iteration noise-sampling numbers.
        with self.timer.time("terminal_flush"):
            self.engine.flush(
                final_iteration, self.config.learning_rate, noise_std
            )
