"""LazyDP: lazy noise update + aggregated noise sampling (the paper's core)."""

from .ans import ANSEngine
from .api import PrivateTrainingSession, make_private
from .checkpoint import export_private_model, load_checkpoint, save_checkpoint
from .history import HistoryTable, NaiveCounterHistory
from .ledger import LedgerError, VersionVector
from .optimizer import LazyNoiseEngine
from .trainer import LazyDPTrainer

__all__ = [
    "ANSEngine",
    "PrivateTrainingSession",
    "make_private",
    "export_private_model",
    "load_checkpoint",
    "save_checkpoint",
    "HistoryTable",
    "NaiveCounterHistory",
    "LedgerError",
    "VersionVector",
    "LazyNoiseEngine",
    "LazyDPTrainer",
]
