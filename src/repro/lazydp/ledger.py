"""Per-row versioning of the deferred-noise ledger.

The HistoryTable answers "how much noise does row ``r`` still owe?";
it is consulted and advanced by whoever *plans* a catch-up.  Once the
training engine runs multiple iterations concurrently in flight
(``repro.async_``), planning and *applying* a catch-up happen on
different threads at different times, and a scheduling bug could apply
a span of deferred noise twice, skip it, or apply it against a row that
was not at the expected starting point.  None of those corruptions are
visible in the released parameters (noise looks like noise), so they
must be caught structurally.

:class:`VersionVector` is that structural check: one int64 per row
recording the iteration *through which* the row's noise has actually
been **applied** (the HistoryTable records how far it has been
*planned*).  Every apply advances the vector through :meth:`advance`,
which verifies the span being applied starts exactly where the row
currently stands — noise for iterations ``(iteration - delay,
iteration]`` is accepted only if the row's applied-through version is
``iteration - delay``.  Because spans must be contiguous and strictly
forward, *any* interleaving that would double-apply or skip noise
raises immediately, no matter how the async engine reorders work.

:meth:`audit_complete` is the end-of-training exactness proof: after
the terminal flush, every row must stand exactly at the final
iteration, i.e. every per-iteration noise value was applied exactly
once.  ``tests/test_async_equivalence.py`` runs this audit for the
bounded-staleness trainer, where released parameters intentionally
differ from the serial schedule and only the ledger can vouch for the
privacy bookkeeping.
"""

from __future__ import annotations

import numpy as np


class LedgerError(RuntimeError):
    """A deferred-noise span was applied out of order, twice, or not at all."""


class VersionVector:
    """Applied-through iteration per embedding row of one table."""

    def __init__(self, num_rows: int, initial=None):
        if num_rows < 1:
            raise ValueError("num_rows must be positive")
        if initial is None:
            # Zero mirrors the HistoryTable convention: "all noise through
            # iteration 0 applied", i.e. none (iterations are 1-based).
            self._applied_through = np.zeros(num_rows, dtype=np.int64)
        else:
            # Mid-stream ledgers (the serving engine audits catch-up from
            # a HistoryTable snapshot, not from iteration 0) start each
            # row at its already-applied-through point.
            initial = np.asarray(initial, dtype=np.int64)
            if initial.shape != (num_rows,):
                raise ValueError(
                    f"initial must cover all {num_rows} rows"
                )
            self._applied_through = initial.copy()

    @classmethod
    def attach(cls, storage: np.ndarray) -> "VersionVector":
        """A VersionVector over caller-owned int64 storage, zero-copy.

        The process-shard backend (``repro.procshard``) gives every
        shard worker a ledger *segment* in
        ``multiprocessing.shared_memory``: the worker advances its
        segment as it applies noise, and the router attaches the same
        bytes to audit exactly-once application across the process
        boundary — both sides see one vector, so a skipped or
        double-applied span in a worker raises in the parent's
        ``audit_noise_ledger`` just as it would in the async engine.
        The storage must be a writable, C-contiguous int64 vector; it
        is used in place, never copied.
        """
        storage = np.asarray(storage)
        if storage.dtype != np.int64 or storage.ndim != 1:
            raise ValueError("attach expects a 1-D int64 vector")
        if storage.size < 1:
            raise ValueError("num_rows must be positive")
        if not storage.flags.writeable or not storage.flags.c_contiguous:
            raise ValueError("attach expects writable contiguous storage")
        vector = cls.__new__(cls)
        vector._applied_through = storage
        return vector

    @property
    def num_rows(self) -> int:
        return self._applied_through.shape[0]

    def applied_through(self, rows: np.ndarray) -> np.ndarray:
        """Per-row applied-through iterations (diagnostics, tests)."""
        return self._applied_through[np.asarray(rows, dtype=np.int64)].copy()

    def advance(self, rows: np.ndarray, delays: np.ndarray, iteration: int) -> None:
        """Record that ``rows`` just received noise for the spans
        ``(iteration - delays, iteration]`` — verifying each span starts
        exactly at the row's current applied-through version.

        Raises :class:`LedgerError` on any gap (noise skipped) or overlap
        (noise double-applied); both indicate an async scheduling bug
        that would silently corrupt the privacy bookkeeping.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        delays = np.asarray(delays, dtype=np.int64)
        if delays.shape != rows.shape:
            raise ValueError("delays must align with rows")
        expected = np.int64(iteration) - delays
        actual = self._applied_through[rows]
        bad = np.nonzero(actual != expected)[0]
        if bad.size:
            first = int(bad[0])
            raise LedgerError(
                f"noise ledger violation at iteration {iteration}: row "
                f"{int(rows[first])} is applied through "
                f"{int(actual[first])} but the span being applied starts "
                f"at {int(expected[first])} ({bad.size} row(s) affected)"
            )
        self._applied_through[rows] = np.int64(iteration)

    def pending_rows(self, iteration: int) -> np.ndarray:
        """Rows whose applied noise lags ``iteration`` (audit helper)."""
        return np.nonzero(self._applied_through < np.int64(iteration))[0]

    def audit_complete(self, final_iteration: int) -> None:
        """Prove noise was applied exactly once per (row, iteration).

        ``advance`` guarantees spans never overlap or leave gaps, so the
        only remaining failure mode is rows that never caught up; after
        the terminal flush every row must stand at ``final_iteration``.
        """
        behind = self.pending_rows(final_iteration)
        if behind.size:
            raise LedgerError(
                f"{behind.size} row(s) still owe noise at iteration "
                f"{final_iteration} (first: row {int(behind[0])} applied "
                f"through {int(self._applied_through[behind[0]])})"
            )
        ahead = np.nonzero(self._applied_through > np.int64(final_iteration))[0]
        if ahead.size:
            raise LedgerError(
                f"{ahead.size} row(s) carry noise beyond iteration "
                f"{final_iteration} (first: row {int(ahead[0])})"
            )

    def snapshot(self) -> np.ndarray:
        """Copy of the raw vector (tests and diagnostics)."""
        return self._applied_through.copy()
