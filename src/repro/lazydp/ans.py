"""Aggregated Noise Sampling (paper Section 5.2.2, Theorem 5.1).

A row that deferred its noise for ``n`` iterations owes the sum of ``n``
i.i.d. ``N(0, s^2)`` draws.  Because that sum is itself ``N(0, n s^2)``,
ANS replaces ``n`` Box-Muller invocations with a single draw scaled by
``sqrt(n)`` — turning noise-sampling cost from O(total deferred updates)
into O(rows caught up), the second half of LazyDP's speedup (Figure 8).

With ANS disabled the engine reproduces Algorithm 1's fallback loop
(lines 31-35): it draws every deferred per-iteration value individually —
*the exact values* the eager baseline would have drawn, thanks to the
counter-keyed noise stream — and sums them.  This mode exists both as the
paper's ablation (LazyDP w/o ANS, Figure 10) and as the bridge that makes
lazy-vs-eager equivalence exactly testable.

The catch-up is split into a *plan* (:func:`plan_catchup` →
:class:`CatchupPlan`: read the HistoryTable, advance it, record rows and
delays) and an *application* (:meth:`ANSEngine.sample`: draw the plan's
noise).  Planning mutates shared state and must run once per (table,
iteration) in order; sampling is a pure keyed function and can run
anywhere — the serial trainer does both inline, the pipelined trainer
(``repro.pipeline``) moves both onto a background prefetch worker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import BufferArena, batched_catchup_sum
from ..rng import NoiseStream


@dataclass(frozen=True)
class CatchupPlan:
    """The *plan* half of a noise catch-up: which rows of one table are
    caught up at one iteration, and how many deferred draws each owes.

    A plan is pure data — producing it touches only the HistoryTable
    (read delays, write the new iteration ids), never the noise stream
    or the parameters.  Because every noise value is keyed by
    ``(seed, table, row, iteration)`` and ``delays``, a plan fully
    determines the noise that will be applied: *who* samples it, *when*,
    and *on which thread* cannot change the bits.  That property is what
    lets ``repro.pipeline`` move sampling onto a background worker while
    staying bitwise-identical to the serial trainer.
    """

    table_index: int
    iteration: int
    rows: np.ndarray  # global row ids being caught up (unique)
    delays: np.ndarray  # per-row count of deferred noise updates


def plan_catchup(
    history, table_index: int, next_rows: np.ndarray, iteration: int, timer=None
) -> CatchupPlan:
    """Plan the catch-up for ``next_rows``: read delays, advance history.

    This is Algorithm 1 lines 13-16 — the only part of the noise path
    that mutates shared state (the HistoryTable), so whoever runs it
    (trainer thread or prefetch worker) must do so exactly once per
    (table, iteration), in iteration order.  ``timer`` optionally
    attributes the two history stages of Figure 11.
    """
    if timer is not None:
        with timer.time("lazydp_history_read"):
            delays = history.delays(next_rows, iteration)
        with timer.time("lazydp_history_update"):
            history.mark_updated(next_rows, iteration)
    else:
        delays = history.delays(next_rows, iteration)
        history.mark_updated(next_rows, iteration)
    return CatchupPlan(table_index, iteration, next_rows, delays)


class ANSEngine:
    """Draws catch-up noise for rows with heterogeneous delays.

    ``arena`` provides scratch (Philox counter blocks) for the batched
    no-ANS replay; engines default to a private one.  Like the engine's
    draw counter, the arena is single-threaded state — per-shard engines
    each own their own, which is what keeps the parallel executors and
    the prefetch worker lock-free.
    """

    def __init__(
        self,
        noise_stream: NoiseStream,
        enabled: bool = True,
        arena: BufferArena | None = None,
    ):
        self.noise_stream = noise_stream
        self.enabled = bool(enabled)
        self.arena = arena if arena is not None else BufferArena()
        # Instrumentation: how many scalar Gaussian draws were requested.
        self.samples_drawn = 0

    def catchup_noise(
        self,
        table_index: int,
        rows: np.ndarray,
        delays: np.ndarray,
        iteration: int,
        dim: int,
        std: float,
    ) -> np.ndarray:
        """Noise equal (in value or in law) to the deferred per-iteration sum.

        Parameters
        ----------
        table_index:
            Which embedding table the rows belong to.
        rows:
            Row indices being caught up (unique).
        delays:
            Per-row count of deferred noise updates; the catch-up covers
            iterations ``iteration - delays[k] + 1 .. iteration``.
        iteration:
            The iteration *through which* rows are being caught up.
        dim:
            Embedding dimension.
        std:
            Per-iteration noise std (sigma * C / B).
        """
        rows = np.asarray(rows, dtype=np.int64)
        delays = np.asarray(delays, dtype=np.int64)
        if rows.shape != delays.shape:
            raise ValueError("rows and delays must align")
        if rows.size == 0:
            return np.zeros((0, dim), dtype=np.float64)
        if np.any(delays < 0):
            raise ValueError("delays must be non-negative")

        if self.enabled:
            self.samples_drawn += rows.size * dim
            return self.noise_stream.aggregated_row_noise(
                table_index, rows, delays, iteration, dim, std=std
            )
        return self._exact_sum(table_index, rows, delays, iteration, dim, std)

    def sample(self, plan: CatchupPlan, dim: int, std: float) -> np.ndarray:
        """The *application* half of a catch-up: draw a plan's noise.

        Stateless apart from the draw counter — sampling the same plan
        from any thread, in any order relative to other plans, yields
        the same bits (the draws are keyed, not sequential), which is
        the contract the pipelined prefetch worker relies on.
        """
        return self.catchup_noise(
            plan.table_index, plan.rows, plan.delays, plan.iteration, dim, std
        )

    def _exact_sum(
        self,
        table_index: int,
        rows: np.ndarray,
        delays: np.ndarray,
        iteration: int,
        dim: int,
        std: float,
    ) -> np.ndarray:
        """Sum each row's individually-keyed deferred draws (no ANS).

        Every ``(row, lag)`` value is generated in one flattened Philox
        invocation and segment-summed (``repro.kernels.sampler``) —
        O(1) kernel launches instead of the historical one-per-lag loop,
        for the same draws.  Total draw count is still ``sum(delays)``,
        the cost profile of LazyDP w/o ANS.
        """
        total = batched_catchup_sum(
            self.noise_stream,
            table_index,
            rows,
            delays,
            iteration,
            dim,
            std=std,
            arena=self.arena,
        )
        self.samples_drawn += int(delays.sum()) * dim
        return total
