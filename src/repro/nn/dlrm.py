"""The DLRM recommendation model (Naumov et al. [51]), built from scratch.

Architecture (paper Figure 1): dense features flow through a bottom MLP;
each sparse feature indexes an embedding table whose gathered vectors are
sum-pooled; the dense vector and pooled embeddings interact via pairwise
dot products; a top MLP produces the CTR logit.

The model exposes the four gradient views (batch / per-example / ghost-norm
/ weighted) that the DP-SGD variants in ``repro.train`` are built from.
Activation backpropagation is shared across all views: ``backward`` runs
once, then each view re-reads the cached (activation, delta) pairs — the
same structure that lets DP-SGD(R)/(F) avoid materialising per-example
weight gradients (paper Section 2.5).
"""

from __future__ import annotations

import numpy as np

from ..configs import DLRMConfig
from ..data.batch import Batch
from ..rng import NoiseStream
from .functional import bce_with_logits, bce_with_logits_grad
from .init import ParameterFactory
from .layers import MLP, EmbeddingBag, FeatureInteraction, Linear
from .parameter import Parameter


def _build_mlp(factory: ParameterFactory, prefix: str, input_dim: int,
               widths: tuple) -> MLP:
    linears = []
    previous = input_dim
    for i, width in enumerate(widths):
        weight = factory.linear_weight(f"{prefix}.linear_{i}.weight", width, previous)
        bias = factory.linear_bias(f"{prefix}.linear_{i}.bias", width)
        linears.append(Linear(weight, bias))
        previous = width
    return MLP(linears)


class DLRM:
    """Deep Learning Recommendation Model with DP-aware backward passes."""

    def __init__(self, config: DLRMConfig, seed: int = 0, dtype=np.float64):
        self.config = config
        self.seed = int(seed)
        stream = NoiseStream(seed)
        factory = ParameterFactory(stream, dtype=dtype)

        self.bottom_mlp = _build_mlp(
            factory, "bottom_mlp", config.dense_features, config.bottom_mlp
        )
        self.embeddings = []
        for t, rows in enumerate(config.table_rows):
            table = factory.embedding_table(
                f"embeddings.table_{t}", rows, config.embedding_dim
            )
            self.embeddings.append(EmbeddingBag(table))
        self.interaction = FeatureInteraction(config.interaction_features)
        self.top_mlp = _build_mlp(
            factory, "top_mlp", config.top_mlp_input_dim, config.top_mlp
        )
        self._parameters = factory.parameters
        self._logits: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> dict:
        """Name -> Parameter for every trainable tensor."""
        return self._parameters

    def dense_parameters(self) -> dict:
        return {
            name: p for name, p in self._parameters.items() if not p.is_embedding
        }

    def embedding_parameters(self) -> dict:
        return {
            name: p for name, p in self._parameters.items() if p.is_embedding
        }

    @property
    def embedding_param_names(self) -> list:
        return [bag.table.name for bag in self.embeddings]

    def parameter_count(self) -> int:
        return int(sum(p.size for p in self._parameters.values()))

    # ------------------------------------------------------------------
    # Forward / loss / backward
    # ------------------------------------------------------------------
    def forward(self, batch: Batch) -> np.ndarray:
        """Compute CTR logits of shape ``(batch,)``."""
        if batch.num_tables != self.config.num_tables:
            raise ValueError(
                f"batch has {batch.num_tables} sparse features, model expects "
                f"{self.config.num_tables}"
            )
        dense_vec = self.bottom_mlp.forward(batch.dense)
        pooled = [
            bag.forward(batch.sparse[:, t, :])
            for t, bag in enumerate(self.embeddings)
        ]
        interacted = self.interaction.forward(dense_vec, pooled)
        logits = self.top_mlp.forward(interacted)[:, 0]
        self._logits = logits
        return logits

    def loss(self, batch: Batch) -> np.ndarray:
        """Per-example BCE losses (not reduced: DP-SGD clips per example)."""
        logits = self.forward(batch)
        return bce_with_logits(logits, batch.labels)

    def loss_grad_per_example(self, batch: Batch) -> np.ndarray:
        """d loss_b / d logit_b for the cached forward pass."""
        if self._logits is None:
            raise RuntimeError("forward must run before loss_grad_per_example")
        return bce_with_logits_grad(self._logits, batch.labels)

    def backward(self, dlogits: np.ndarray) -> None:
        """Backpropagate per-example output gradients through every layer.

        ``dlogits`` has shape ``(batch,)``; each layer caches its upstream
        delta so the gradient views below can be computed afterwards.
        """
        delta = np.asarray(dlogits, dtype=np.float64)[:, None]
        d_interacted = self.top_mlp.backward(delta)
        d_dense_vec, d_pooled = self.interaction.backward(d_interacted)
        for t, bag in enumerate(self.embeddings):
            bag.backward(d_pooled[t])
        self.bottom_mlp.backward(d_dense_vec)

    # ------------------------------------------------------------------
    # Gradient views (read the caches left by ``backward``)
    # ------------------------------------------------------------------
    def batch_grads(self) -> dict:
        """Summed-over-batch gradients: dense arrays + SparseRowGrads."""
        grads = {}
        grads.update(self.bottom_mlp.batch_grads())
        grads.update(self.top_mlp.batch_grads())
        for bag in self.embeddings:
            grads.update(bag.batch_grads())
        return grads

    def per_example_dense_grads(self) -> dict:
        """Materialised per-example grads for every dense parameter.

        This is the memory-hungry path of DP-SGD(B): a batch of N allocates
        N full gradient copies of the MLPs (paper Section 2.5).
        """
        grads = {}
        grads.update(self.bottom_mlp.per_example_grads())
        grads.update(self.top_mlp.per_example_grads())
        return grads

    def per_example_embedding_pairs(self) -> dict:
        """Factored per-example embedding grads, one PerExamplePairs per table."""
        return {
            bag.table.name: bag.per_example_pairs() for bag in self.embeddings
        }

    def ghost_norm_sq(self) -> np.ndarray:
        """Per-example ||g_b||^2 over ALL parameters without materialisation."""
        total = self.bottom_mlp.ghost_norm_sq() + self.top_mlp.ghost_norm_sq()
        for bag in self.embeddings:
            total = total + bag.ghost_norm_sq()
        return total

    def weighted_grads(self, weights: np.ndarray) -> dict:
        """``sum_b weights[b] * g_b`` for every parameter (reweighted pass)."""
        grads = {}
        grads.update(self.bottom_mlp.weighted_grads(weights))
        grads.update(self.top_mlp.weighted_grads(weights))
        for bag in self.embeddings:
            grads.update(bag.weighted_grads(weights))
        return grads

    # ------------------------------------------------------------------
    # Introspection used by trainers
    # ------------------------------------------------------------------
    def accessed_rows(self, batch: Batch, table: int) -> np.ndarray:
        return batch.accessed_rows(table)

    def table_parameter(self, table: int) -> Parameter:
        return self.embeddings[table].table
