"""From-scratch neural-network substrate with DP-aware backward passes."""

from .dlrm import DLRM
from .functional import (
    bce_with_logits,
    bce_with_logits_grad,
    relu,
    relu_grad,
    sigmoid,
)
from .init import ParameterFactory
from .layers import MLP, EmbeddingBag, FeatureInteraction, Linear
from .parameter import GradSet, Parameter, PerExamplePairs, SparseRowGrad

__all__ = [
    "DLRM",
    "bce_with_logits",
    "bce_with_logits_grad",
    "relu",
    "relu_grad",
    "sigmoid",
    "ParameterFactory",
    "MLP",
    "EmbeddingBag",
    "FeatureInteraction",
    "Linear",
    "GradSet",
    "Parameter",
    "PerExamplePairs",
    "SparseRowGrad",
]
