"""Parameter and gradient containers for the from-scratch NN substrate.

Embedding-table gradients are the heart of this paper, so they get a real
sparse representation (``SparseRowGrad``) instead of being densified: a
non-private SGD step must touch only the gathered rows (paper Figure 4a),
and LazyDP's whole point is keeping the DP update sparse too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class Parameter:
    """A trainable tensor with a stable identity.

    Attributes
    ----------
    name:
        Dotted path inside the owning model (e.g. ``"top_mlp.linear_0.weight"``).
    data:
        The numpy array holding the current weights; updated in place.
    param_id:
        Small integer unique within the model; keys the deterministic
        initialisation / noise streams.
    is_embedding:
        True for embedding tables, which take the sparse update path.
    """

    def __init__(self, name: str, data: np.ndarray, param_id: int,
                 is_embedding: bool = False):
        self.name = name
        self.data = data
        self.param_id = int(param_id)
        self.is_embedding = bool(is_embedding)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "embedding" if self.is_embedding else "dense"
        return f"Parameter({self.name!r}, shape={self.data.shape}, {kind})"


@dataclass
class SparseRowGrad:
    """Gradient of an embedding table: values for a set of unique rows.

    ``rows`` are unique, sorted row indices; ``values[k]`` is the gradient
    for ``rows[k]``.  This is the object a sparse optimizer consumes; its
    size is proportional to the batch's pooling footprint, not the table.
    """

    rows: np.ndarray            # (n,) int64, unique & sorted
    values: np.ndarray          # (n, dim) float

    def __post_init__(self):
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.values = np.asarray(self.values)
        if self.rows.ndim != 1 or self.values.ndim != 2:
            raise ValueError("rows must be (n,), values must be (n, dim)")
        if self.rows.shape[0] != self.values.shape[0]:
            raise ValueError("rows and values must align")

    @property
    def dim(self) -> int:
        return self.values.shape[1]

    def to_dense(self, num_rows: int) -> np.ndarray:
        """Materialise as a dense ``(num_rows, dim)`` gradient (tests only)."""
        dense = np.zeros((num_rows, self.dim), dtype=self.values.dtype)
        dense[self.rows] = self.values
        return dense

    def scaled(self, factor: float) -> "SparseRowGrad":
        return SparseRowGrad(self.rows, self.values * factor)


@dataclass
class PerExamplePairs:
    """Per-example embedding gradients in factored (pair) form.

    For EmbeddingBag with sum pooling, example ``b``'s gradient w.r.t. table
    row ``r`` is ``mult * delta_b`` where ``mult`` counts how many of the
    example's lookups hit ``r``.  Storing (example, row, mult) pairs plus the
    shared ``deltas`` matrix keeps per-example gradients implicit — exactly
    the structure the DP-SGD(F) ghost-norm trick exploits (paper Section 2.5).
    """

    example_ids: np.ndarray     # (p,) int64
    rows: np.ndarray            # (p,) int64
    mults: np.ndarray           # (p,) float64 lookup multiplicities
    deltas: np.ndarray          # (batch, dim) upstream grads per example
    batch_size: int

    def norm_sq_per_example(self) -> np.ndarray:
        """||g_b||^2 for each example, computed without materialisation.

        ``sum_r (mult_{b,r} * ||delta_b||)^2`` — the embedding ghost norm.
        """
        delta_norm_sq = np.einsum("bd,bd->b", self.deltas, self.deltas)
        mult_sq = self.mults.astype(np.float64) ** 2
        per_example = np.bincount(
            self.example_ids, weights=mult_sq, minlength=self.batch_size
        )
        return per_example * delta_norm_sq

    def weighted_row_grad(self, weights: np.ndarray) -> SparseRowGrad:
        """``sum_b weights[b] * g_b`` as a sparse row gradient.

        ``weights`` typically holds ``clip_factor_b / batch`` so the result
        is the clipped averaged gradient DP-SGD feeds the optimizer.
        """
        weights = np.asarray(weights, dtype=np.float64)
        unique_rows, inverse = np.unique(self.rows, return_inverse=True)
        scale = weights[self.example_ids] * self.mults
        contrib = self.deltas[self.example_ids] * scale[:, None]
        values = np.zeros((unique_rows.shape[0], self.deltas.shape[1]),
                          dtype=np.float64)
        np.add.at(values, inverse, contrib)
        return SparseRowGrad(unique_rows, values)

    def dense_per_example(self, num_rows: int) -> np.ndarray:
        """Materialise ``(batch, num_rows, dim)`` grads (small tests only)."""
        dense = np.zeros(
            (self.batch_size, num_rows, self.deltas.shape[1]), dtype=np.float64
        )
        contrib = self.deltas[self.example_ids] * self.mults[:, None]
        np.add.at(dense, (self.example_ids, self.rows), contrib)
        return dense


@dataclass
class GradSet:
    """A named collection of gradients: dense arrays and sparse row grads."""

    dense: dict = field(default_factory=dict)    # name -> np.ndarray
    sparse: dict = field(default_factory=dict)   # name -> SparseRowGrad

    def names(self) -> list:
        return list(self.dense) + list(self.sparse)
