"""Layers with explicit, DP-aware backward passes.

Every trainable layer exposes four gradient views over one cached
forward/backward pair, matching the four training algorithms in the paper:

* ``batch_grads``        - summed over the batch (non-private SGD; also the
                           second pass of DP-SGD(R)/(F) when reweighted).
* ``per_example_grads``  - one gradient per example (DP-SGD(B) [1]).
* ``ghost_norm_sq``      - per-example gradient norms **without**
                           materialising per-example gradients (DP-SGD(F)
                           [13]; the linear/embedding trick from Section 2.5).
* ``weighted_grads``     - ``sum_b w_b * g_b`` (the reweighted pass of
                           DP-SGD(R) [40] and DP-SGD(F)).

Layers are stateful across one forward+backward: they cache activations and
deltas, which the trainer then interrogates.  This mirrors how Opacus hooks
module forward/backward to compute per-sample gradients.
"""

from __future__ import annotations

import numpy as np

from .functional import relu, relu_grad
from .parameter import Parameter, PerExamplePairs


class Linear:
    """Fully connected layer ``y = x @ W.T + b``."""

    def __init__(self, weight: Parameter, bias: Parameter):
        if weight.data.ndim != 2:
            raise ValueError("weight must be 2-D (out, in)")
        self.weight = weight
        self.bias = bias
        self._x: np.ndarray | None = None
        self._delta: np.ndarray | None = None

    @property
    def out_features(self) -> int:
        return self.weight.data.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight.data.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.data.T + self.bias.data

    def backward(self, delta: np.ndarray) -> np.ndarray:
        """Cache the upstream delta and return the input gradient."""
        self._delta = delta
        return delta @ self.weight.data

    # -- gradient views -------------------------------------------------
    def batch_grads(self) -> dict:
        x, delta = self._require_cache()
        return {
            self.weight.name: delta.T @ x,
            self.bias.name: delta.sum(axis=0),
        }

    def per_example_grads(self) -> dict:
        x, delta = self._require_cache()
        return {
            self.weight.name: np.einsum("bo,bi->boi", delta, x),
            self.bias.name: delta.copy(),
        }

    def ghost_norm_sq(self) -> np.ndarray:
        """||g_b||^2 over (W, b) per example, no materialisation.

        For a linear layer the per-example weight gradient is the outer
        product ``delta_b x_b^T``, whose Frobenius norm factorises as
        ``||delta_b|| * ||x_b||`` — the DP-SGD(F) estimation the paper
        credits to [13].
        """
        x, delta = self._require_cache()
        x_sq = np.einsum("bi,bi->b", x, x)
        d_sq = np.einsum("bo,bo->b", delta, delta)
        return d_sq * x_sq + d_sq  # bias contributes ||delta_b||^2

    def weighted_grads(self, weights: np.ndarray) -> dict:
        x, delta = self._require_cache()
        weighted_delta = delta * weights[:, None]
        return {
            self.weight.name: weighted_delta.T @ x,
            self.bias.name: weighted_delta.sum(axis=0),
        }

    def _require_cache(self) -> tuple[np.ndarray, np.ndarray]:
        if self._x is None or self._delta is None:
            raise RuntimeError("forward/backward must run before gradient views")
        return self._x, self._delta


class MLP:
    """Stack of Linear layers with ReLU between (none after the last)."""

    def __init__(self, linears: list):
        self.linears = list(linears)
        self._pre_activations: list = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._pre_activations = []
        out = x
        last = len(self.linears) - 1
        for i, linear in enumerate(self.linears):
            out = linear.forward(out)
            if i != last:
                self._pre_activations.append(out)
                out = relu(out)
        return out

    def backward(self, delta: np.ndarray) -> np.ndarray:
        last = len(self.linears) - 1
        for i in range(last, -1, -1):
            delta = self.linears[i].backward(delta)
            if i != 0:
                delta = relu_grad(self._pre_activations[i - 1], delta)
        return delta

    def parameters(self) -> list:
        params = []
        for linear in self.linears:
            params.append(linear.weight)
            params.append(linear.bias)
        return params

    def batch_grads(self) -> dict:
        grads: dict = {}
        for linear in self.linears:
            grads.update(linear.batch_grads())
        return grads

    def per_example_grads(self) -> dict:
        grads: dict = {}
        for linear in self.linears:
            grads.update(linear.per_example_grads())
        return grads

    def ghost_norm_sq(self) -> np.ndarray:
        total = None
        for linear in self.linears:
            contribution = linear.ghost_norm_sq()
            total = contribution if total is None else total + contribution
        return total

    def weighted_grads(self, weights: np.ndarray) -> dict:
        grads: dict = {}
        for linear in self.linears:
            grads.update(linear.weighted_grads(weights))
        return grads


class EmbeddingBag:
    """Embedding gather + sum pooling (paper Section 2.1).

    ``forward`` takes integer lookups of shape ``(batch, lookups)`` and
    returns the pooled ``(batch, dim)`` output.  The access pattern is the
    paper's central object: only ``batch * lookups`` of the table's rows are
    touched per iteration, so gradients are sparse while DP noise is dense.
    """

    def __init__(self, table: Parameter):
        if table.data.ndim != 2:
            raise ValueError("embedding table must be 2-D (rows, dim)")
        self.table = table
        self._indices: np.ndarray | None = None
        self._delta: np.ndarray | None = None
        self._pairs_cache: tuple | None = None

    @property
    def num_rows(self) -> int:
        return self.table.data.shape[0]

    @property
    def dim(self) -> int:
        return self.table.data.shape[1]

    def forward(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2:
            raise ValueError("indices must be (batch, lookups)")
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise IndexError("embedding index out of range")
        self._indices = indices
        self._pairs_cache = None
        gathered = self.table.data[indices]          # (batch, lookups, dim)
        return gathered.sum(axis=1)

    def backward(self, delta: np.ndarray) -> None:
        """Embedding inputs are indices; there is no input gradient."""
        self._delta = delta
        return None

    def accessed_rows(self) -> np.ndarray:
        """Unique rows gathered by the cached batch (sorted)."""
        indices, _ = self._require_cache()
        return np.unique(indices)

    # -- gradient views -------------------------------------------------
    def _pairs(self) -> tuple:
        """(example_ids, rows, mults) for unique (example, row) pairs."""
        if self._pairs_cache is None:
            indices, _ = self._require_cache()
            batch, _lookups = indices.shape
            combined = indices + np.int64(self.num_rows) * np.arange(
                batch, dtype=np.int64
            )[:, None]
            unique_combined, counts = np.unique(combined, return_counts=True)
            example_ids = unique_combined // self.num_rows
            rows = unique_combined % self.num_rows
            self._pairs_cache = (
                example_ids.astype(np.int64),
                rows.astype(np.int64),
                counts.astype(np.float64),
            )
        return self._pairs_cache

    def per_example_pairs(self) -> PerExamplePairs:
        _, delta = self._require_cache()
        example_ids, rows, mults = self._pairs()
        return PerExamplePairs(
            example_ids=example_ids,
            rows=rows,
            mults=mults,
            deltas=delta,
            batch_size=delta.shape[0],
        )

    def batch_grads(self) -> dict:
        _, delta = self._require_cache()
        ones = np.ones(delta.shape[0], dtype=np.float64)
        return {self.table.name: self.per_example_pairs().weighted_row_grad(ones)}

    def ghost_norm_sq(self) -> np.ndarray:
        return self.per_example_pairs().norm_sq_per_example()

    def weighted_grads(self, weights: np.ndarray) -> dict:
        return {
            self.table.name: self.per_example_pairs().weighted_row_grad(weights)
        }

    def _require_cache(self) -> tuple[np.ndarray, np.ndarray]:
        if self._indices is None or self._delta is None:
            raise RuntimeError("forward/backward must run before gradient views")
        return self._indices, self._delta


class FeatureInteraction:
    """DLRM dot-product feature interaction.

    Stacks the bottom-MLP output with every table's pooled embedding into
    ``(batch, F, dim)`` and emits the strictly-upper-triangular pairwise dot
    products, concatenated after the dense vector (Naumov et al. [51]).
    """

    def __init__(self, num_features: int):
        self.num_features = int(num_features)
        upper = np.triu_indices(self.num_features, k=1)
        self._rows_idx = upper[0]
        self._cols_idx = upper[1]
        self._stacked: np.ndarray | None = None

    @property
    def num_pairs(self) -> int:
        return self._rows_idx.shape[0]

    def output_dim(self, dim: int) -> int:
        return dim + self.num_pairs

    def forward(self, dense_vec: np.ndarray, embeddings: list) -> np.ndarray:
        stacked = np.stack([dense_vec] + list(embeddings), axis=1)
        if stacked.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} feature vectors, "
                f"got {stacked.shape[1]}"
            )
        self._stacked = stacked
        dots = np.einsum("bfd,bgd->bfg", stacked, stacked)
        pairs = dots[:, self._rows_idx, self._cols_idx]
        return np.concatenate([dense_vec, pairs], axis=1)

    def backward(self, delta: np.ndarray) -> tuple:
        """Return (d_dense_vec, [d_embedding_t for each table])."""
        if self._stacked is None:
            raise RuntimeError("forward must run before backward")
        stacked = self._stacked
        batch, num_features, dim = stacked.shape
        d_dense_direct = delta[:, :dim]
        d_pairs = delta[:, dim:]
        d_dots = np.zeros((batch, num_features, num_features), dtype=np.float64)
        d_dots[:, self._rows_idx, self._cols_idx] = d_pairs
        # d z_i += dp_ij z_j and d z_j += dp_ij z_i  (symmetrise then contract)
        d_dots_sym = d_dots + np.swapaxes(d_dots, 1, 2)
        d_stacked = np.einsum("bfg,bgd->bfd", d_dots_sym, stacked)
        d_dense = d_stacked[:, 0, :] + d_dense_direct
        d_embeddings = [d_stacked[:, 1 + t, :] for t in range(num_features - 1)]
        return d_dense, d_embeddings
