"""Deterministic parameter initialisation.

All weights come from the model's ``NoiseStream`` (domain ``DOMAIN_INIT``),
so two models built with the same seed are bit-identical — a prerequisite
for trajectory-level equivalence tests between training algorithms.
"""

from __future__ import annotations

import numpy as np

from ..rng import NoiseStream
from .parameter import Parameter


class ParameterFactory:
    """Allocates parameters with stable ids and deterministic values."""

    def __init__(self, stream: NoiseStream, dtype=np.float64):
        self._stream = stream
        self._dtype = dtype
        self._next_id = 0
        self.parameters: dict = {}

    def _allocate(self, name: str, values: np.ndarray,
                  is_embedding: bool = False) -> Parameter:
        if name in self.parameters:
            raise ValueError(f"duplicate parameter name: {name}")
        param = Parameter(
            name, values.astype(self._dtype), self._next_id, is_embedding
        )
        self._next_id += 1
        self.parameters[name] = param
        return param

    def linear_weight(self, name: str, out_features: int,
                      in_features: int) -> Parameter:
        """He-style Gaussian init: std = sqrt(2 / fan_in)."""
        std = np.sqrt(2.0 / in_features)
        values = self._stream.init_values(
            self._next_id, (out_features, in_features), std=std
        )
        return self._allocate(name, values)

    def linear_bias(self, name: str, out_features: int) -> Parameter:
        return self._allocate(name, np.zeros(out_features))

    def embedding_table(self, name: str, num_rows: int, dim: int) -> Parameter:
        """Gaussian init scaled by 1/sqrt(dim), the common DLRM choice."""
        std = 1.0 / np.sqrt(dim)
        values = self._stream.init_values(self._next_id, (num_rows, dim), std=std)
        return self._allocate(name, values, is_embedding=True)
