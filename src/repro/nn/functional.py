"""Stateless numerical primitives: activations and the CTR loss.

Everything returns float64 and is numerically stable in the tails; the DP
equivalence tests compare full training trajectories, so sloppy kernels
would show up as spurious divergence.
"""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, upstream: np.ndarray) -> np.ndarray:
    """Gradient of relu at pre-activation ``x`` (subgradient 0 at x == 0)."""
    return upstream * (x > 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-example binary cross-entropy from logits.

    Uses the log-sum-exp form ``max(x,0) - x*y + log(1+exp(-|x|))`` which is
    stable for large |x|.  Returns one loss per example — DP-SGD clips
    per-example gradients, so the loss must not be pre-reduced.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    return (
        np.maximum(logits, 0.0)
        - logits * targets
        + np.log1p(np.exp(-np.abs(logits)))
    )


def bce_with_logits_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """d loss_b / d logit_b = sigmoid(logit_b) - y_b (per example)."""
    return sigmoid(logits) - np.asarray(targets, dtype=np.float64)
