"""Per-example gradient clipping (DP-SGD step 2, paper Section 2.4).

DP-SGD bounds each example's influence by scaling its gradient ``g_b`` to
norm at most ``C``:

    g_b <- g_b * min(1, C / ||g_b||)

The three baseline algorithms differ only in how ``||g_b||`` is obtained
(materialised per-example grads for DP-SGD(B), a norm-only first pass for
DP-SGD(R), ghost norms for DP-SGD(F)); the clip factors themselves are
identical, which is why all three train identical models (Section 2.5).
"""

from __future__ import annotations

import numpy as np


def clip_factors(norms: np.ndarray, max_norm: float) -> np.ndarray:
    """``min(1, C / ||g_b||)`` per example, with 0-norm treated as factor 1."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norms = np.asarray(norms, dtype=np.float64)
    if np.any(norms < 0):
        raise ValueError("norms must be non-negative")
    factors = np.ones_like(norms)
    # Divide only where the norm exceeds the bound; tiny norms would
    # otherwise overflow the division (harmlessly, but noisily).
    np.divide(max_norm, norms, out=factors, where=norms > max_norm)
    return factors


def clipped_average_weights(norms: np.ndarray, max_norm: float,
                            batch_size: int) -> np.ndarray:
    """Per-example weights for the reweighted backward pass.

    ``w_b = min(1, C/||g_b||) / B`` — backpropagating with the output
    gradients scaled by ``w_b`` yields the clipped averaged gradient in a
    single per-batch pass (the DP-SGD(R)/(F) trick, [40], [13]).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    return clip_factors(norms, max_norm) / float(batch_size)


def global_norms(norm_sq_contributions: list) -> np.ndarray:
    """Combine per-layer ||g_b||^2 contributions into per-example L2 norms."""
    if not norm_sq_contributions:
        raise ValueError("need at least one contribution")
    total = None
    for contribution in norm_sq_contributions:
        contribution = np.asarray(contribution, dtype=np.float64)
        total = contribution if total is None else total + contribution
    return np.sqrt(np.maximum(total, 0.0))


def clip_dense_per_example(per_example: np.ndarray,
                           factors: np.ndarray) -> np.ndarray:
    """Scale each example's materialised gradient by its clip factor."""
    factors = np.asarray(factors, dtype=np.float64)
    shape = (-1,) + (1,) * (per_example.ndim - 1)
    return per_example * factors.reshape(shape)
