"""The analytic Gaussian mechanism (Balle & Wang, ICML 2018).

Gives the *exact* (epsilon, delta) profile of a single Gaussian-mechanism
application with L2 sensitivity 1 and noise std ``sigma``:

    delta(eps, sigma) = Phi(1/(2 sigma) - eps sigma)
                        - e^eps * Phi(-1/(2 sigma) - eps sigma)

This serves two roles in the reproduction:

* a ground-truth cross-check for the RDP accountant — RDP composition is
  an upper bound, so for a single full-batch step the accountant's
  epsilon must dominate the analytic one (tested);
* the calibration tool practitioners use to pick sigma for a one-shot
  release (e.g. publishing a single flushed LazyDP model).

The classical bound ``sigma = sqrt(2 ln(1.25/delta)) / eps`` is included
for comparison; the analytic calibration is strictly tighter.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


def analytic_gaussian_delta(sigma: float, epsilon: float) -> float:
    """Exact delta of the sensitivity-1 Gaussian mechanism at epsilon."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    a = 1.0 / (2.0 * sigma)
    b = epsilon * sigma
    return float(norm.cdf(a - b) - np.exp(epsilon) * norm.cdf(-a - b))


def analytic_gaussian_epsilon(sigma: float, delta: float,
                              tolerance: float = 1e-12) -> float:
    """Smallest epsilon such that the mechanism is (epsilon, delta)-DP."""
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if analytic_gaussian_delta(sigma, 0.0) <= delta:
        return 0.0
    low, high = 0.0, 1.0
    while analytic_gaussian_delta(sigma, high) > delta:
        high *= 2.0
        if high > 1e6:
            raise RuntimeError("failed to bracket epsilon")
    while high - low > tolerance * max(1.0, high):
        mid = 0.5 * (low + high)
        if analytic_gaussian_delta(sigma, mid) > delta:
            low = mid
        else:
            high = mid
    return high


def analytic_gaussian_sigma(epsilon: float, delta: float,
                            tolerance: float = 1e-9) -> float:
    """Smallest sigma making the mechanism (epsilon, delta)-DP.

    This is Balle & Wang's 'analytic calibration'; strictly less noise
    than the classical bound, and valid for epsilon >= 1 where the
    classical bound is not.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    low, high = 1e-6, 1.0
    while analytic_gaussian_delta(high, epsilon) > delta:
        high *= 2.0
        if high > 1e9:
            raise RuntimeError("failed to bracket sigma")
    while high - low > tolerance * max(1.0, high):
        mid = 0.5 * (low + high)
        if analytic_gaussian_delta(mid, epsilon) > delta:
            low = mid
        else:
            high = mid
    return high


def classical_gaussian_sigma(epsilon: float, delta: float) -> float:
    """The textbook bound sqrt(2 ln(1.25/delta)) / epsilon (needs eps < 1)."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("the classical bound requires 0 < epsilon < 1")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    return float(np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon)
