"""Empirical privacy audit of embedding tables.

The paper's argument against EANA (Section 2.5): because EANA "never adds
noise to an embedding vector if it has never been accessed", an adversary
inspecting the final model learns *exactly* which feature values appeared
in someone's training data — rows still holding their initialisation value
were never accessed.  DP-SGD and LazyDP perturb every row, so the final
table reveals nothing about which rows were touched.

``audit_untouched_rows`` runs that attack: it flags rows whose final value
equals the initial value and scores the flags against the ground-truth
access set.  A perfect (1.0 precision/recall) attack is the EANA leak; an
attack at chance level is what DP requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AuditResult:
    """Outcome of the untouched-row identification attack on one table."""

    num_rows: int
    num_accessed: int
    flagged_untouched: int
    true_positives: int       # flagged rows that really were never accessed
    false_positives: int      # flagged rows that were accessed after all

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        if flagged == 0:
            return 0.0
        return self.true_positives / flagged

    @property
    def recall(self) -> float:
        untouched = self.num_rows - self.num_accessed
        if untouched == 0:
            return 0.0
        return self.true_positives / untouched

    @property
    def leaks(self) -> bool:
        """True when the attack recovers the access set essentially exactly."""
        return self.recall > 0.99 and self.precision > 0.99


def audit_untouched_rows(initial_table: np.ndarray, final_table: np.ndarray,
                         accessed_rows: np.ndarray,
                         atol: float = 0.0) -> AuditResult:
    """Run the adversary of paper Section 2.5 against one trained table.

    Parameters
    ----------
    initial_table, final_table:
        The table before and after training.
    accessed_rows:
        Ground-truth row indices gathered at least once during training.
    atol:
        Tolerance for "the row did not move"; 0 demands exact equality.
    """
    if initial_table.shape != final_table.shape:
        raise ValueError("table shapes must match")
    num_rows = initial_table.shape[0]
    accessed = np.zeros(num_rows, dtype=bool)
    accessed[np.asarray(accessed_rows, dtype=np.int64)] = True

    if atol == 0.0:
        unchanged = np.all(final_table == initial_table, axis=1)
    else:
        unchanged = np.all(
            np.abs(final_table - initial_table) <= atol, axis=1
        )

    true_positives = int(np.count_nonzero(unchanged & ~accessed))
    false_positives = int(np.count_nonzero(unchanged & accessed))
    return AuditResult(
        num_rows=num_rows,
        num_accessed=int(np.count_nonzero(accessed)),
        flagged_untouched=int(np.count_nonzero(unchanged)),
        true_positives=true_positives,
        false_positives=false_positives,
    )
