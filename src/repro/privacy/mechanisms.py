"""Gaussian-mechanism noise conventions shared by every trainer.

DP-SGD (Abadi et al. [1]) adds ``N(0, sigma^2 C^2)`` to the *sum* of clipped
per-example gradients, then divides by the batch size:

    g_noisy = (1/B) * ( sum_b clip_C(g_b) + N(0, sigma^2 C^2 I) )

so the per-coordinate noise applied to the averaged gradient has standard
deviation ``sigma * C / B`` (paper Algorithm 1, lines 34 and 38).  Keeping
this arithmetic in one place guarantees every variant — DP-SGD(B/R/F),
EANA, LazyDP with or without ANS — adds *identically distributed* noise,
which the equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np


def gradient_noise_std(noise_multiplier: float, max_norm: float,
                       batch_size: int) -> float:
    """Per-coordinate noise std applied to the averaged clipped gradient."""
    if noise_multiplier < 0:
        raise ValueError("noise_multiplier must be non-negative")
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    return noise_multiplier * max_norm / float(batch_size)


def aggregated_noise_std(noise_multiplier: float, max_norm: float,
                         batch_size: int, delays: np.ndarray) -> np.ndarray:
    """Std of one ANS draw replacing ``delays`` deferred noise values.

    By Theorem 5.1 the sum of ``n`` i.i.d. ``N(0, s^2)`` values is
    ``N(0, n s^2)``, so the replacement draw has std ``s * sqrt(n)``.
    """
    base = gradient_noise_std(noise_multiplier, max_norm, batch_size)
    delays = np.asarray(delays, dtype=np.float64)
    if np.any(delays < 0):
        raise ValueError("delays must be non-negative")
    return base * np.sqrt(delays)
