"""Renyi-DP accounting for the subsampled Gaussian mechanism.

Tracks the privacy budget of DP-SGD training the way Opacus does: each
iteration applies the Gaussian mechanism to a Poisson-subsampled batch with
rate ``q`` and noise multiplier ``sigma``; the Renyi divergence bound at a
grid of orders ``alpha`` accumulates additively over iterations, and is
finally converted to an ``(epsilon, delta)`` guarantee.

The integer-order RDP of the sampled Gaussian mechanism follows Mironov,
Talwar & Zhang, "Renyi Differential Privacy of the Sampled Gaussian
Mechanism" (2019), Section 3.3:

    A(alpha) = sum_{k=0}^{alpha} C(alpha, k) (1-q)^{alpha-k} q^k
               * exp( (k^2 - k) / (2 sigma^2) )
    RDP(alpha) = log(A(alpha)) / (alpha - 1)

computed in log space for stability.  LazyDP changes *when* noise lands in
the table, not how much noise the mechanism injects per iteration, so its
accounting is identical to DP-SGD's — asserting that is one of the
equivalence tests.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import binom, gammaln, log_ndtr, logsumexp

#: Default Renyi orders: fractional low orders (tight for small budgets,
#: as in Opacus), a dense integer range, plus sparse high orders (tight
#: for large budgets / small q).
DEFAULT_ORDERS = (
    (1.25, 1.5, 1.75, 2.25, 2.5, 2.75, 3.5, 4.5, 5.5, 6.5, 7.5)
    + tuple(range(2, 129))
    + (160, 192, 256, 384, 512)
)


def _log_binom(n: int, k: np.ndarray) -> np.ndarray:
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def _log_add(log_a: float, log_b: float) -> float:
    """log(e^a + e^b), stable."""
    if log_a == -math.inf:
        return log_b
    if log_b == -math.inf:
        return log_a
    high, low = max(log_a, log_b), min(log_a, log_b)
    return high + math.log1p(math.exp(low - high))


def _log_sub(log_a: float, log_b: float) -> float:
    """log(e^a - e^b) for a >= b, stable."""
    if log_b == -math.inf:
        return log_a
    if log_a == log_b:
        return -math.inf
    if log_b > log_a:
        raise ValueError("log_sub requires a >= b")
    return log_a + math.log1p(-math.exp(log_b - log_a))


def _log_erfc(x: float) -> float:
    """log(erfc(x)) via the normal log-CDF: erfc(x) = 2 Phi(-x sqrt(2))."""
    return math.log(2.0) + float(log_ndtr(-x * math.sqrt(2.0)))


def rdp_gaussian(noise_multiplier: float, alpha: float) -> float:
    """RDP of the (unsampled) Gaussian mechanism: alpha / (2 sigma^2)."""
    if noise_multiplier <= 0:
        return float("inf")
    return alpha / (2.0 * noise_multiplier ** 2)


def _rdp_sampled_gaussian_frac(q: float, noise_multiplier: float,
                               alpha: float) -> float:
    """Fractional-order RDP of the sampled Gaussian mechanism.

    Implements the convergent double series of Mironov, Talwar & Zhang
    (2019), Section 3.3 (the ``_compute_log_a_frac`` computation of
    tensorflow-privacy / Opacus): the generalised binomial expansion of
    A(alpha) with each term's Gaussian tail integral expressed through
    erfc, accumulated in log space with sign handling until the terms
    fall below 2^-43.
    """
    sigma = noise_multiplier
    log_a0, log_a1 = -math.inf, -math.inf
    z0 = sigma ** 2 * math.log(1.0 / q - 1.0) + 0.5
    i = 0
    while True:
        coef = float(binom(alpha, i))
        if coef == 0.0:
            break
        log_coef = math.log(abs(coef))
        j = alpha - i
        log_t0 = log_coef + i * math.log(q) + j * math.log1p(-q)
        log_t1 = log_coef + j * math.log(q) + i * math.log1p(-q)
        log_e0 = math.log(0.5) + _log_erfc((i - z0) / (math.sqrt(2) * sigma))
        log_e1 = math.log(0.5) + _log_erfc((z0 - j) / (math.sqrt(2) * sigma))
        log_s0 = log_t0 + (i * i - i) / (2.0 * sigma ** 2) + log_e0
        log_s1 = log_t1 + (j * j - j) / (2.0 * sigma ** 2) + log_e1
        if coef > 0:
            log_a0 = _log_add(log_a0, log_s0)
            log_a1 = _log_add(log_a1, log_s1)
        else:
            log_a0 = _log_sub(log_a0, log_s0)
            log_a1 = _log_sub(log_a1, log_s1)
        i += 1
        if max(log_s0, log_s1) < -30 and i > alpha:
            break
    log_a = _log_add(log_a0, log_a1)
    return float(max(log_a, 0.0) / (alpha - 1))


def rdp_sampled_gaussian(q: float, noise_multiplier: float,
                         alpha: float) -> float:
    """Per-step RDP at order ``alpha`` (> 1) under Poisson sampling.

    Integer orders use the exact binomial formula; fractional orders use
    the erfc series (both from Mironov et al. 2019).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("sampling rate q must be in [0, 1]")
    if alpha <= 1:
        raise ValueError("alpha must exceed 1")
    if q == 0.0:
        return 0.0
    # sigma^2 underflowing to zero (subnormal sigma) means no effective
    # noise: the mechanism provides no Renyi guarantee.
    if noise_multiplier <= 0 or noise_multiplier ** 2 == 0.0:
        return float("inf")
    if q == 1.0:
        return rdp_gaussian(noise_multiplier, alpha)
    if float(alpha) != int(alpha):
        return _rdp_sampled_gaussian_frac(q, noise_multiplier, float(alpha))
    alpha = int(alpha)
    k = np.arange(alpha + 1, dtype=np.float64)
    # Subnormal sigma underflows 2*sigma^2 to zero; the resulting inf is
    # the mathematically correct RDP, so the divide warning is spurious.
    with np.errstate(divide="ignore", invalid="ignore"):
        log_terms = (
            _log_binom(alpha, k)
            + (alpha - k) * np.log1p(-q)
            + k * np.log(q)
            + (k * k - k) / (2.0 * noise_multiplier ** 2)
        )
    log_terms = np.where(np.isnan(log_terms), np.inf, log_terms)
    log_a = logsumexp(log_terms)
    return float(max(log_a, 0.0) / (alpha - 1))


def compute_rdp(q: float, noise_multiplier: float, steps: int,
                orders=DEFAULT_ORDERS) -> np.ndarray:
    """Cumulative RDP after ``steps`` iterations, one value per order."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    per_step = np.array(
        [rdp_sampled_gaussian(q, noise_multiplier, a) for a in orders],
        dtype=np.float64,
    )
    return per_step * steps


def rdp_to_epsilon(rdp: np.ndarray, delta: float,
                   orders=DEFAULT_ORDERS) -> tuple[float, float]:
    """Convert accumulated RDP to (epsilon, best_order) at a given delta.

    Uses the improved conversion of Balle et al. (2020) as implemented by
    Opacus:  eps = rdp - (log(delta) + log(alpha)) / (alpha - 1)
                  + log((alpha - 1) / alpha),
    minimised over orders.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    orders = np.asarray(orders, dtype=np.float64)
    rdp = np.asarray(rdp, dtype=np.float64)
    if orders.shape != rdp.shape:
        raise ValueError("orders and rdp must align")
    epsilons = (
        rdp
        - (np.log(delta) + np.log(orders)) / (orders - 1)
        + np.log((orders - 1) / orders)
    )
    epsilons = np.where(np.isnan(epsilons), np.inf, epsilons)
    best = int(np.argmin(epsilons))
    return float(max(epsilons[best], 0.0)), float(orders[best])


class RDPAccountant:
    """Stateful accountant mirroring ``opacus.accountants.RDPAccountant``."""

    def __init__(self, orders=DEFAULT_ORDERS):
        self.orders = tuple(orders)
        self._history: list = []  # (q, sigma, steps) runs, coalesced

    def step(self, noise_multiplier: float, sample_rate: float,
             count: int = 1) -> None:
        """Record ``count`` mechanism applications."""
        if count < 1:
            raise ValueError("count must be positive")
        if self._history:
            q, sigma, steps = self._history[-1]
            if q == sample_rate and sigma == noise_multiplier:
                self._history[-1] = (q, sigma, steps + count)
                return
        self._history.append((sample_rate, noise_multiplier, count))

    @property
    def steps(self) -> int:
        return int(sum(steps for _, _, steps in self._history))

    def total_rdp(self) -> np.ndarray:
        total = np.zeros(len(self.orders), dtype=np.float64)
        for q, sigma, steps in self._history:
            total += compute_rdp(q, sigma, steps, self.orders)
        return total

    def get_epsilon(self, delta: float) -> float:
        epsilon, _ = rdp_to_epsilon(self.total_rdp(), delta, self.orders)
        return epsilon

    def get_privacy_spent(self, delta: float) -> tuple[float, float]:
        """(epsilon, best_alpha) after all recorded steps."""
        return rdp_to_epsilon(self.total_rdp(), delta, self.orders)
