"""Differential-privacy substrate: clipping, mechanisms, accounting, audit."""

from .accountant import (
    DEFAULT_ORDERS,
    RDPAccountant,
    compute_rdp,
    rdp_gaussian,
    rdp_sampled_gaussian,
    rdp_to_epsilon,
)
from .audit import AuditResult, audit_untouched_rows
from .gdp import (
    analytic_gaussian_delta,
    analytic_gaussian_epsilon,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
)
from .clipping import (
    clip_dense_per_example,
    clip_factors,
    clipped_average_weights,
    global_norms,
)
from .mechanisms import aggregated_noise_std, gradient_noise_std
from .membership import (
    MembershipAttackResult,
    dp_advantage_bound,
    loss_threshold_attack,
)

__all__ = [
    "DEFAULT_ORDERS",
    "RDPAccountant",
    "compute_rdp",
    "rdp_gaussian",
    "rdp_sampled_gaussian",
    "rdp_to_epsilon",
    "AuditResult",
    "audit_untouched_rows",
    "analytic_gaussian_delta",
    "analytic_gaussian_epsilon",
    "analytic_gaussian_sigma",
    "classical_gaussian_sigma",
    "clip_dense_per_example",
    "clip_factors",
    "clipped_average_weights",
    "global_norms",
    "aggregated_noise_std",
    "gradient_noise_std",
    "MembershipAttackResult",
    "dp_advantage_bound",
    "loss_threshold_attack",
]
