"""Empirical membership inference: does the trained model leak its data?

DP's formal guarantee bounds exactly this adversary: given the final
model, decide whether one example was in the training set.  The paper
cites the real-world versions of this attack (GPT-2 / Stable Diffusion /
ChatGPT extraction [7, 8, 48]) as the motivation for its threat model.

``loss_threshold_attack`` implements the standard shadow-free baseline
(Yeom et al. 2018): members tend to have lower loss than non-members, so
thresholding the per-example loss separates them.  Its advantage over
random guessing is an *empirical lower bound* on the model's leakage —
DP upper-bounds it at ``(e^eps - 1) / (e^eps + 1)`` in the balanced
setting, which ``dp_advantage_bound`` computes for comparison.

Used by tests to show the ordering DP promises: a non-private model's
attack advantage exceeds a strongly-noised private model's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batch import Batch
from ..nn.dlrm import DLRM


@dataclass(frozen=True)
class MembershipAttackResult:
    """Outcome of a loss-threshold membership attack."""

    auc: float                 # attack ROC AUC (0.5 = chance)
    best_accuracy: float       # best balanced accuracy over thresholds
    member_mean_loss: float
    non_member_mean_loss: float

    @property
    def advantage(self) -> float:
        """Membership advantage = 2 * (balanced accuracy) - 1."""
        return 2.0 * self.best_accuracy - 1.0


def loss_threshold_attack(model: DLRM, member_batch: Batch,
                          non_member_batch: Batch) -> MembershipAttackResult:
    """Run the loss-threshold attack against a trained model.

    The attacker scores each candidate example by the model's loss on it
    and predicts "member" below a threshold; sweeping the threshold gives
    the attack's ROC.
    """
    member_losses = model.loss(member_batch)
    non_member_losses = model.loss(non_member_batch)

    # Lower loss => more likely member; negate so higher score = member.
    scores = np.concatenate([-member_losses, -non_member_losses])
    labels = np.concatenate([
        np.ones(member_losses.shape[0]),
        np.zeros(non_member_losses.shape[0]),
    ])
    from ..train.metrics import roc_auc
    auc = roc_auc(labels, scores)

    # Best balanced accuracy over all thresholds.
    thresholds = np.unique(scores)
    best = 0.5
    for threshold in thresholds:
        predicted_member = scores >= threshold
        true_positive_rate = predicted_member[labels == 1.0].mean()
        false_positive_rate = predicted_member[labels == 0.0].mean()
        balanced = 0.5 * (true_positive_rate + (1.0 - false_positive_rate))
        best = max(best, float(balanced))

    return MembershipAttackResult(
        auc=float(auc),
        best_accuracy=best,
        member_mean_loss=float(member_losses.mean()),
        non_member_mean_loss=float(non_member_losses.mean()),
    )


def dp_advantage_bound(epsilon: float, delta: float = 0.0) -> float:
    """DP's bound on membership advantage (Yeom et al. / Humphries et al.).

    For an (eps, delta)-DP mechanism the balanced-accuracy advantage is
    at most ``(e^eps - 1 + 2 delta) / (e^eps + 1)``.
    """
    if epsilon < 0 or not 0.0 <= delta <= 1.0:
        raise ValueError("invalid (epsilon, delta)")
    return float(
        (np.expm1(epsilon) + 2.0 * delta) / (np.exp(epsilon) + 1.0)
    )
