"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``    train a scaled DLRM with any of the seven algorithms and
             print throughput, loss and the privacy budget spent.
``figures``  print the paper-vs-reproduced table for one figure (or all).
``report``   write the full EXPERIMENTS-style report (optionally with the
             measured-mode sweep).
``audit``    train EANA and LazyDP on the same trace and run the
             untouched-row attack against both final models.
``serve``    train briefly, then drive the private serving tier with
             skewed closed-loop load and print throughput/latency.
``score``    evaluate the reproduction scoreboard: every tracked figure
             point vs the paper, with pass/fail per tolerance band.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

import numpy as np

from . import configs
from .bench.experiments import ALL_FIGURES
from .bench.report import build_report
from .bench.reporting import format_table
from .data import DataLoader, SyntheticClickDataset, paper_skew_spec
from .nn import DLRM
from .obs import Observability
from .perfmodel import ALGORITHMS
from .privacy import audit_untouched_rows
from .session import ExecutionPlan, TrainSession
from .testing import trainer_for
from .train import DPConfig


def _add_train_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "train", help="train a scaled DLRM with one algorithm"
    )
    parser.add_argument("--algorithm", choices=ALGORITHMS, default="lazydp")
    parser.add_argument("--rows", type=int, default=8192,
                        help="rows per embedding table")
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--noise-multiplier", type=float, default=1.1)
    parser.add_argument("--max-grad-norm", type=float, default=1.0)
    parser.add_argument("--learning-rate", type=float, default=0.05)
    parser.add_argument("--delta", type=float, default=1e-5)
    parser.add_argument("--skew", choices=("random", "low", "medium", "high"),
                        default="random")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--plan", default=None, metavar="SPEC",
        help="unified execution-plan spec, e.g. "
             "'shards=4,pipeline=2,async=bounded:2,ans=off' "
             "(keys: ans, shards, partition, backend, pipeline, "
             "async, inflight, obs, serve, admission).  The backend axis "
             "selects a registered execution backend as 'name[:workers]', "
             "e.g. backend=threads:4 or backend=process (one worker "
             "process per shard); the old executor=/workers= keys are a "
             "deprecated spelling of the same choice.  Replaces the "
             "per-engine flags below; combining it with them is an "
             "error.",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a thread-aware span timeline and write it as "
             "Chrome trace-event JSON (open in Perfetto or "
             "chrome://tracing); implies obs=trace on top of whatever "
             "the plan's obs axis enables",
    )
    # Value flags default to the None sentinel (their effective defaults
    # live in _ENGINE_FLAGS) so the --plan conflict check can tell an
    # explicitly-passed default from an omitted flag.
    shard = parser.add_argument_group(
        "sharding", "partitioned embedding engine (lazydp algorithms only)"
    )
    shard.add_argument("--num-shards", type=int, default=None,
                       help="partition each table into this many shards "
                            "(default: 1, the flat engine)")
    shard.add_argument("--partition", choices=configs.SHARD_PARTITIONS,
                       default=None,
                       help="row->shard assignment strategy "
                            "(default: row_range)")
    shard.add_argument("--executor", choices=configs.SHARD_EXECUTORS,
                       default=None,
                       help="per-shard model-update schedule "
                            "(default: serial)")
    shard.add_argument("--max-workers", type=int, default=None,
                       help="thread-pool size (default: one per shard)")
    pipeline = parser.add_argument_group(
        "pipelining", "background noise prefetch (lazydp algorithms only)"
    )
    pipeline.add_argument("--pipeline", action="store_true",
                          help="precompute catch-up noise on a background "
                               "worker instead of the critical path")
    pipeline.add_argument("--prefetch-depth", type=int, default=None,
                          help="input-queue lookahead / staging-buffer "
                               "depth (default: 2, double buffering; "
                               "with --async: max(2, --max-in-flight) "
                               "so the noise runway never becomes the "
                               "in-flight bottleneck)")
    async_group = parser.add_argument_group(
        "async", "multi-in-flight apply engine (lazydp algorithms only; "
                 "implies --pipeline)"
    )
    async_group.add_argument("--async", dest="use_async",
                             action="store_true",
                             help="apply model updates on a background "
                                  "worker with up to --max-in-flight "
                                  "iterations outstanding")
    async_group.add_argument("--max-in-flight", type=int, default=None,
                             help="cap on outstanding iteration applies "
                                  "(default: 2)")
    async_group.add_argument("--staleness", default=None,
                             help="read schedule: 'strict' (bitwise-serial, "
                                  "the default) or 'bounded[:k]' (reads may "
                                  "trail up to k applies; default k=1)")


#: Engine flags of the legacy CLI surface: dest -> (flag, effective
#: default).  Value flags parse with a ``None`` sentinel default so an
#: explicitly-passed value — even the default one — is detectable, and
#: the effective default here is substituted at mapping time.  Single
#: source of truth for ``_add_train_parser``, the ``--plan`` conflict
#: check, and the flags-to-plan mapping.
_ENGINE_FLAGS = {
    "num_shards": ("--num-shards", 1),
    "partition": ("--partition", "row_range"),
    "executor": ("--executor", "serial"),
    "max_workers": ("--max-workers", None),
    "pipeline": ("--pipeline", False),
    "prefetch_depth": ("--prefetch-depth", None),
    "use_async": ("--async", False),
    "max_in_flight": ("--max-in-flight", 2),
    "staleness": ("--staleness", "strict"),
}

#: store_true flags: "used" means True, not "is not None".
_ENGINE_BOOL_FLAGS = ("pipeline", "use_async")


def _engine_value(args, dest: str):
    """The flag's parsed value, or its effective default if omitted."""
    value = getattr(args, dest)
    if dest in _ENGINE_BOOL_FLAGS:
        return value
    return _ENGINE_FLAGS[dest][1] if value is None else value


def _plan_from_legacy_flags(args) -> ExecutionPlan:
    """Map the per-engine flags onto an ExecutionPlan (old CLI surface).

    All three engine configs are constructed (and therefore validated)
    unconditionally, as the pre-plan CLI did — a bad value like
    ``--max-workers 0`` errors even when its axis is off, instead of
    being silently dropped.
    """
    prefetch_depth = _engine_value(args, "prefetch_depth")
    use_async = args.use_async
    executor = _engine_value(args, "executor")
    max_workers = _engine_value(args, "max_workers")
    # Validate the deprecated fields through ShardConfig's own checks
    # (so e.g. --max-workers 0 still errors), but hand the plan the
    # canonical spelling: the executor choice lives on the backend axis.
    configs.ShardConfig(
        num_shards=_engine_value(args, "num_shards"),
        partition=_engine_value(args, "partition"),
        executor=executor,
        max_workers=max_workers,
    )
    shards = configs.ShardConfig(
        num_shards=_engine_value(args, "num_shards"),
        partition=_engine_value(args, "partition"),
    )
    if executor == "serial":
        backend = "numpy"
    elif max_workers is None:
        backend = executor
    else:
        backend = f"{executor}:{max_workers}"
    pipeline = configs.PipelineConfig(
        enabled=args.pipeline or use_async,
        prefetch_depth=2 if prefetch_depth is None else prefetch_depth,
    )
    async_ = configs.AsyncConfig(
        enabled=use_async,
        max_in_flight=_engine_value(args, "max_in_flight"),
        staleness=_engine_value(args, "staleness"),
    )
    if not pipeline.enabled or (use_async and prefetch_depth is None):
        # With --async and no explicit --prefetch-depth, the builder's
        # default applies: max(2, --max-in-flight).
        pipeline = None
    return ExecutionPlan(
        ans=(args.algorithm == "lazydp"),
        shards=shards if shards.is_sharded else None,
        pipeline=pipeline,
        async_=async_ if async_.enabled else None,
        # The pre-plan surface dropped the whole ShardConfig (executor
        # included) for unsharded runs; keep that: backend follows the
        # executor flags only when the shards axis is actually on.
        backend=backend if shards.is_sharded else "numpy",
    )


def _legacy_engine_flags_used(args) -> list:
    """Engine flags the user passed explicitly (conflict with --plan)."""
    used = []
    for dest, (flag, _) in _ENGINE_FLAGS.items():
        value = getattr(args, dest)
        explicit = value if dest in _ENGINE_BOOL_FLAGS else value is not None
        if explicit:
            used.append(flag)
    return used


def _run_train(args) -> int:
    config = configs.small_dlrm(rows=args.rows)
    skew = (None if args.skew == "random"
            else paper_skew_spec(args.skew, args.rows))
    model = DLRM(config, seed=args.seed)
    dataset = SyntheticClickDataset(config, seed=args.seed + 1, skew=skew)
    loader = DataLoader(dataset, batch_size=args.batch,
                        num_batches=args.iterations, seed=args.seed + 2)
    dp = DPConfig(
        noise_multiplier=args.noise_multiplier,
        max_grad_norm=args.max_grad_norm,
        learning_rate=args.learning_rate,
        delta=args.delta,
    )
    if args.plan is not None:
        conflicts = _legacy_engine_flags_used(args)
        if conflicts:
            print(f"--plan replaces {', '.join(conflicts)}; pass the axes "
                  "inside the plan spec instead", file=sys.stderr)
            return 2
        if args.algorithm != "lazydp":
            print("--plan determines the whole execution (including the "
                  "ans axis, via ans=on/off); drop --algorithm",
                  file=sys.stderr)
            return 2
        try:
            plan = ExecutionPlan.from_spec(args.plan)
        except ValueError as error:
            print(f"invalid --plan spec: {error}", file=sys.stderr)
            return 2
    else:
        # Effective-state guard (not explicit-usage): passing a flag at
        # its no-op default, e.g. ``--num-shards 1``, selects no engine
        # and stays legal with any algorithm.
        engine_selected = (_engine_value(args, "num_shards") > 1
                           or args.pipeline or args.use_async)
        if engine_selected and args.algorithm not in ("lazydp",
                                                      "lazydp_no_ans"):
            print("--num-shards > 1 / --pipeline / --async require a "
                  "lazydp algorithm", file=sys.stderr)
            return 2
        try:
            plan = (_plan_from_legacy_flags(args)
                    if args.algorithm in ("lazydp", "lazydp_no_ans")
                    else None)
        except ValueError as error:
            print(f"invalid engine options: {error}", file=sys.stderr)
            return 2

    if args.trace is not None and plan is not None:
        # --trace turns the tracer on without clobbering a metrics
        # setting the plan spec already chose.
        plan = dataclasses.replace(plan, obs=configs.ObservabilityConfig(
            trace=True,
            metrics=plan.obs.metrics if plan.obs is not None else True,
        ))

    obs = None
    if plan is not None:
        # The trace skew also feeds the frequency partitioner, so a
        # skewed run gets mass-balanced shards, not equal-row cuts.
        session = TrainSession.build(
            model, dp, plan, noise_seed=args.seed + 3,
            skew=skew if plan.is_sharded else None,
        )
        trainer = session.trainer
        obs = session.observability
        result = session.fit(loader)
    else:
        session = None
        trainer = trainer_for(args.algorithm, model, dp,
                              noise_seed=args.seed + 3)
        if args.trace is not None:
            obs = trainer.instrument(
                Observability(configs.ObservabilityConfig(trace=True))
            )
        result = trainer.fit(loader)
    per_iteration = result.wall_time / max(result.iterations, 1)
    print(f"algorithm        : {result.algorithm}")
    if plan is not None:
        print(f"plan             : {plan.canonical()}")
    print(f"iterations       : {result.iterations}")
    print(f"wall time        : {result.wall_time:.3f}s "
          f"({per_iteration * 1e3:.1f} ms/iter)")
    print(f"loss             : {result.mean_losses[0]:.4f} -> "
          f"{result.final_loss:.4f}")
    if result.epsilon is not None:
        print(f"privacy          : epsilon = {result.epsilon:.3f} "
              f"at delta = {args.delta:g}")
    stage_rows = sorted(
        result.stage_times.items(), key=lambda item: -item[1]
    )
    print(format_table(
        ["stage", "seconds"], [[s, t] for s, t in stage_rows],
        title="stage breakdown",
    ))
    if result.counters:
        print(format_table(
            ["counter", "count"],
            [[name, count] for name, count in sorted(result.counters.items())],
            title="event counters",
        ))
    if plan is not None and plan.is_sharded:
        shard_rows = [
            [s, trainer.plan.table(0).shard_size(s), f"{seconds:.4f}"]
            for s, seconds in enumerate(trainer.shard_update_seconds())
        ]
        print(format_table(
            ["shard", "rows (table 0)", "update seconds"], shard_rows,
            title=f"per-shard model update ({plan.shards.partition}, "
                  f"backend={plan.backend})",
        ))
        if result.shard_times is not None:
            summed = sorted(result.shard_times["summed"].items(),
                            key=lambda item: -item[1])
            print(format_table(
                ["stage", "seconds (all shards)"],
                [[s, f"{t:.4f}"] for s, t in summed],
                title="per-shard stage totals",
            ))
            shard_skew = result.shard_times.get("skew")
            if shard_skew is not None:
                print(f"shard update skew: max {shard_skew['max']:.4f}s, "
                      f"min {shard_skew['min']:.4f}s, "
                      f"spread {shard_skew['spread']:.4f}s")
    if plan is not None and plan.backend.partition(":")[0] == "process":
        trainer.audit_noise_ledger(result.iterations)
        stats = trainer.procshard_stats()
        print(format_table(
            ["worker", "pid", "messages", "samples drawn"],
            [
                [w["shard"], w["pid"], w["messages"], w["samples_drawn"]]
                for w in stats["workers"]
            ],
            title=f"process backend ({stats['start_method']} start, "
                  "noise ledger exact)",
        ))
    if plan is not None and plan.is_pipelined:
        stats = trainer.pipeline_stats()
        print(format_table(
            ["metric", "value"],
            [
                ["prefetch busy (s)", f"{stats['prefetch_busy_seconds']:.4f}"],
                ["exposed wait (s)", f"{stats['exposed_wait_seconds']:.4f}"],
                ["hidden (s)", f"{stats['hidden_seconds']:.4f}"],
                ["hidden fraction", f"{stats['hidden_fraction']:.1%}"],
                ["plans computed", stats["plans_computed"]],
            ],
            title="noise prefetch pipeline (depth "
                  f"{trainer.prefetch_depth})",
        ))
    if plan is not None and plan.is_async:
        stats = trainer.async_stats()
        trainer.audit_noise_ledger(result.iterations)
        print(format_table(
            ["metric", "value"],
            [
                ["staleness policy", stats["staleness"]],
                ["applies completed", stats["applies_completed"]],
                ["apply busy (s)", f"{stats['apply_busy_seconds']:.4f}"],
                ["submit stall (s)",
                 f"{stats['submit_stall_seconds']:.4f}"],
                ["staleness wait (s)",
                 f"{stats['staleness_wait_seconds']:.4f}"],
                ["noise ledger", "exact (applied once per row)"],
            ],
            title="async apply engine (max in flight "
                  f"{plan.async_.max_in_flight})",
        ))
    if args.trace is not None:
        events = obs.save_trace(args.trace)
        tracks = ", ".join(obs.tracer.track_names())
        print(f"trace            : wrote {events} events to {args.trace} "
              f"(tracks: {tracks})")
    if session is not None:
        session.close()
    return 0


def _run_serve(args) -> int:
    """Train a small model, then put its serving tier under load."""
    from .serve import HotRowCache, run_load

    config = configs.small_dlrm(rows=args.rows)
    model = DLRM(config, seed=args.seed)
    dataset = SyntheticClickDataset(config, seed=args.seed + 1)
    loader = DataLoader(dataset, batch_size=args.batch,
                        num_batches=args.iterations, seed=args.seed + 2)
    session = TrainSession.build(model, DPConfig(), ExecutionPlan(),
                                 noise_seed=args.seed + 3)
    session.fit(loader)
    cache = (HotRowCache.for_skew(args.skew, args.rows)
             if args.cache else False)
    engine = session.serve(cache=cache)
    rows = []
    for readers in (1, args.readers):
        report = run_load(
            engine,
            readers=readers,
            requests_per_reader=args.requests,
            batch_size=args.lookup_batch,
            skew=args.skew,
            think_time=args.think_ms / 1e3,
            seed=args.seed,
        )
        if report.errors:
            print(f"serve errors: {report.errors[0]!r}", file=sys.stderr)
            return 1
        rows.append([
            readers, f"{report.throughput_rps:.0f}",
            f"{report.rows_per_second:.0f}",
            f"{report.latency_p50_ms:.3f}", f"{report.latency_p99_ms:.3f}",
        ])
    print(format_table(
        ["readers", "req/s", "rows/s", "p50 ms", "p99 ms"], rows,
        title=f"serving load ({args.skew} skew, batch {args.lookup_batch}, "
              f"cache {'on' if args.cache else 'off'})",
    ))
    stats = engine.stats()
    if "cache" in stats:
        cache_stats = stats["cache"]
        print(f"hot-row cache    : {cache_stats['resident_rows']}/"
              f"{cache_stats['capacity']} resident, "
              f"hit rate {cache_stats['hit_rate']:.1%}")
    print(f"memo             : {stats['rows_served']} rows served, "
          f"{stats['memo_hits']} memo hits, "
          f"{stats['rows_caught_up']} caught up")
    session.close()
    return 0


def _run_figures(args) -> int:
    names = list(ALL_FIGURES) if args.which == "all" else [args.which]
    for name in names:
        result = ALL_FIGURES[name]()
        print(result.table())
        print()
    return 0


def _run_report(args) -> int:
    report = build_report(include_measured=args.measured)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(report)
    return 0


def _run_audit(args) -> int:
    config = configs.small_dlrm(rows=args.rows)
    rows_for_table = []
    final_tables = {}
    reference = DLRM(config, seed=11)
    for algorithm in ("eana", "lazydp"):
        model = DLRM(config, seed=11)
        dataset = SyntheticClickDataset(config, seed=12)
        loader = DataLoader(dataset, batch_size=args.batch,
                            num_batches=args.iterations, seed=13)
        trainer = trainer_for(algorithm, model, DPConfig(), noise_seed=14)
        trainer.fit(loader)
        final_tables[algorithm] = model.embeddings[0].table.data
        if not rows_for_table:
            rows_for_table = [
                batch.accessed_rows(0) for batch in loader
            ]
    accessed = np.unique(np.concatenate(rows_for_table))
    table_rows = []
    for algorithm, final in final_tables.items():
        outcome = audit_untouched_rows(
            reference.embeddings[0].table.data, final, accessed
        )
        table_rows.append([
            algorithm, outcome.flagged_untouched, outcome.precision,
            outcome.recall, "LEAKS" if outcome.leaks else "protected",
        ])
    print(format_table(
        ["algorithm", "rows flagged", "precision", "recall", "verdict"],
        table_rows,
        title="Untouched-row attack against the final model (table 0)",
    ))
    return 0


def _run_score(args) -> int:
    from .bench.scoreboard import evaluate_scoreboard, failures

    rows = evaluate_scoreboard()
    table_rows = [
        [row.figure, row.series, row.label, row.paper, row.reproduced,
         f"{row.relative_error:.1%}", "ok" if row.passed else "FAIL"]
        for row in rows
    ]
    print(format_table(
        ["figure", "series", "point", "paper", "reproduced", "error",
         "status"],
        table_rows,
        title="Reproduction scoreboard",
    ))
    failed = failures(rows)
    print(f"\n{len(rows) - len(failed)}/{len(rows)} tracked points within "
          "tolerance")
    return 1 if failed else 0


def _run_backends(args) -> int:
    """Print the execution-backend registry: one row per backend with
    its capabilities, kernel table and availability — the discovery
    surface for "why is backend=numba rejected here?"."""
    from .kernels import active_kernel_backend
    from .session import available_backends, backend_info

    table_rows = []
    for name in available_backends():
        info = backend_info(name)
        ok, reason = info.available()
        table_rows.append([
            name,
            ",".join(c for c in ("flat", "shards", "pipeline", "async",
                                 "workers") if info.supports(c)),
            info.kernels,
            "yes" if ok else "NO",
            reason if not ok else info.description,
        ])
    print(format_table(
        ["backend", "capabilities", "kernels", "available", "notes"],
        table_rows,
        title="Execution backends (ExecutionPlan backend=...)",
    ))
    print(f"\nactive kernel table: {active_kernel_backend()}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    _add_train_parser(subparsers)

    figures_parser = subparsers.add_parser(
        "figures", help="print paper-vs-reproduced tables"
    )
    figures_parser.add_argument(
        "--which", choices=list(ALL_FIGURES) + ["all"], default="all"
    )

    report_parser = subparsers.add_parser(
        "report", help="write the full reproduction report"
    )
    report_parser.add_argument("--output")
    report_parser.add_argument("--measured", action="store_true")

    audit_parser = subparsers.add_parser(
        "audit", help="run the untouched-row attack on EANA vs LazyDP"
    )
    audit_parser.add_argument("--rows", type=int, default=4096)
    audit_parser.add_argument("--batch", type=int, default=128)
    audit_parser.add_argument("--iterations", type=int, default=6)

    subparsers.add_parser(
        "score", help="evaluate the reproduction scoreboard"
    )

    subparsers.add_parser(
        "backends",
        help="list execution backends: capabilities, kernels, availability",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="drive the private serving tier under skewed load"
    )
    serve_parser.add_argument("--rows", type=int, default=4096,
                              help="rows per embedding table")
    serve_parser.add_argument("--batch", type=int, default=128,
                              help="training batch size")
    serve_parser.add_argument("--iterations", type=int, default=4,
                              help="training iterations before serving")
    serve_parser.add_argument("--readers", type=int, default=4,
                              help="concurrent closed-loop clients")
    serve_parser.add_argument("--requests", type=int, default=500,
                              help="requests per reader")
    serve_parser.add_argument("--lookup-batch", type=int, default=8,
                              help="rows per serving request")
    serve_parser.add_argument("--skew",
                              choices=("random", "low", "medium", "high"),
                              default="medium",
                              help="fig13d traffic skew of the load")
    serve_parser.add_argument("--think-ms", type=float, default=0.5,
                              help="per-request client think time")
    serve_parser.add_argument("--cache", action="store_true",
                              help="front lookups with a skew-sized "
                                   "hot-row cache")
    serve_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    handlers = {
        "train": _run_train,
        "figures": _run_figures,
        "report": _run_report,
        "audit": _run_audit,
        "score": _run_score,
        "serve": _run_serve,
        "backends": _run_backends,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
