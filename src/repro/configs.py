"""Model configurations used throughout the paper's evaluation.

Two kinds of configuration live here:

* **Runnable geometries** — scaled-down row counts that train in memory with
  numpy; used by tests, examples and the "measured" benchmark mode.
* **Paper-scale geometries** — the exact 24 GB-192 GB sizes of Sections 4/6/7;
  too large to instantiate, these parameterise the analytical performance
  model (``repro.perfmodel``).

The default model follows the paper's Section 6 benchmark: MLPerf v2.1 DLRM
with 8 MLP layers and 26 embedding tables of 128-dim vectors, 96 GB total
(~7.2 M rows per table in fp32), one lookup per table, batch 2048, with
access indices drawn uniformly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace


FP32_BYTES = 4


def _config_from_dict(cls, data: dict):
    """Shared ``from_dict`` for the engine configs: reject unknown keys
    with a message naming the accepted ones, let the dataclass
    ``__post_init__`` validate values."""
    if not isinstance(data, dict):
        raise ValueError(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    known = {field.name for field in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys: {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(known))})"
        )
    return cls(**data)

# Paper defaults (Section 6).
PAPER_NUM_TABLES = 26
PAPER_EMBEDDING_DIM = 128
PAPER_DEFAULT_MODEL_BYTES = 96 * 10**9
PAPER_DEFAULT_BATCH = 2048
PAPER_DEFAULT_LOOKUPS = 1
PAPER_MLP_BOTTOM = (512, 256, 128)
PAPER_MLP_TOP = (1024, 1024, 512, 256, 1)
PAPER_DENSE_FEATURES = 13


@dataclass(frozen=True)
class DLRMConfig:
    """Geometry of a DLRM model (paper Figure 1).

    ``bottom_mlp`` hidden sizes must end at ``embedding_dim`` so the dense
    vector can join the feature interaction; ``top_mlp`` must end at 1
    (the CTR logit).
    """

    name: str
    dense_features: int
    bottom_mlp: tuple
    embedding_dim: int
    table_rows: tuple            # rows per embedding table
    lookups_per_table: int
    top_mlp: tuple

    def __post_init__(self):
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ValueError("bottom MLP must end at embedding_dim")
        if self.top_mlp[-1] != 1:
            raise ValueError("top MLP must end at 1 (logit)")
        if self.lookups_per_table < 1:
            raise ValueError("lookups_per_table must be >= 1")
        if any(rows < 1 for rows in self.table_rows):
            raise ValueError("every table needs at least one row")

    # -- derived geometry ------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.table_rows)

    @property
    def total_embedding_rows(self) -> int:
        return int(sum(self.table_rows))

    @property
    def total_embedding_params(self) -> int:
        return self.total_embedding_rows * self.embedding_dim

    def embedding_bytes(self, bytes_per_param: int = FP32_BYTES) -> int:
        return self.total_embedding_params * bytes_per_param

    @property
    def interaction_features(self) -> int:
        """Bottom-MLP vector + one pooled vector per table."""
        return self.num_tables + 1

    @property
    def interaction_pairs(self) -> int:
        features = self.interaction_features
        return features * (features - 1) // 2

    @property
    def top_mlp_input_dim(self) -> int:
        return self.embedding_dim + self.interaction_pairs

    def mlp_layer_dims(self) -> list:
        """All (in, out) pairs of the dense layers, bottom then top."""
        dims = []
        previous = self.dense_features
        for width in self.bottom_mlp:
            dims.append((previous, width))
            previous = width
        previous = self.top_mlp_input_dim
        for width in self.top_mlp:
            dims.append((previous, width))
            previous = width
        return dims

    @property
    def mlp_params(self) -> int:
        return int(
            sum(fan_in * fan_out + fan_out for fan_in, fan_out in self.mlp_layer_dims())
        )

    def scaled_tables(self, factor: float, name: str | None = None) -> "DLRMConfig":
        """Scale every table's row count (the paper's 10x/100x/1000x shrink)."""
        rows = tuple(max(1, int(round(r * factor))) for r in self.table_rows)
        return replace(self, table_rows=rows, name=name or f"{self.name}-x{factor:g}")


#: Partition strategies understood by ``repro.shard`` (kept here so config
#: validation does not import the shard package).
SHARD_PARTITIONS = ("row_range", "frequency", "hash")

#: Legal values of the *deprecated* ``ShardConfig.executor`` shim.  New
#: backends (e.g. ``process``) register with
#: ``repro.session.register_backend`` and are selected on the plan's
#: backend axis only — this tuple is frozen at the pre-registry set.
SHARD_EXECUTORS = ("serial", "threads")


@dataclass(frozen=True)
class ShardConfig:
    """How the embedding engine is sharded (``repro.shard``).

    ``num_shards = 1`` is the flat configuration; anything higher
    partitions every table with ``partition``.

    ``executor`` and ``max_workers`` are a **deprecated** spelling of
    the execution backend: plans now carry that choice on their own
    ``backend`` axis (``backend="threads:4"``, ``backend="process"``).
    A non-serial value here still works — ``ExecutionPlan`` rewrites it
    onto the backend axis with one ``DeprecationWarning`` — but setting
    both spellings at once is a contradiction and an error.
    """

    num_shards: int = 1
    partition: str = "row_range"
    executor: str = "serial"
    max_workers: int | None = None

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.partition not in SHARD_PARTITIONS:
            raise ValueError(
                f"unknown partition strategy: {self.partition!r} "
                f"(choose from {SHARD_PARTITIONS})"
            )
        if self.executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown executor backend: {self.executor!r} "
                f"(choose from {SHARD_EXECUTORS})"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be positive when set")

    @property
    def is_sharded(self) -> bool:
        return self.num_shards > 1

    def trainer_kwargs(self) -> dict:
        """Keyword arguments for ``ShardedLazyDPTrainer``."""
        return {
            "num_shards": self.num_shards,
            "partition": self.partition,
            "executor": self.executor,
            "max_workers": self.max_workers,
        }

    def to_dict(self) -> dict:
        """JSON-serializable form (``ExecutionPlan.to_dict`` nests it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardConfig":
        return _config_from_dict(cls, data)


@dataclass(frozen=True)
class PipelineConfig:
    """How the training engine pipelines noise prefetch (``repro.pipeline``).

    ``enabled = False`` is the serial configuration (catch-up noise
    computed inline on the critical path).  When enabled, a background
    worker precomputes catch-up noise ``prefetch_depth`` iterations
    ahead into a double-buffered staging area; ``prefetch_depth`` also
    sets the input queue's lookahead depth (the paper's Algorithm 1
    queue is depth 1).
    """

    enabled: bool = False
    prefetch_depth: int = 2

    def __post_init__(self):
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")

    def trainer_kwargs(self) -> dict:
        """Keyword arguments for the pipelined trainers."""
        return {"prefetch_depth": self.prefetch_depth}

    def to_dict(self) -> dict:
        """JSON-serializable form (``ExecutionPlan.to_dict`` nests it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        return _config_from_dict(cls, data)


#: Gradient-staleness modes understood by ``repro.async_`` (kept here so
#: config validation does not import the async package).
ASYNC_STALENESS_MODES = ("strict", "bounded")


@dataclass(frozen=True)
class AsyncConfig:
    """How the training engine runs iterations in flight (``repro.async_``).

    ``enabled = False`` is the synchronous configuration (the apply
    phase runs inline on the trainer thread).  When enabled, up to
    ``max_in_flight`` iteration applies may be outstanding on the
    background apply worker while the trainer proceeds; ``staleness``
    selects the read schedule (``"strict"`` = bitwise-serial,
    ``"bounded"`` / ``"bounded:<k>"`` = slab reads may trail up to
    ``k`` applies).
    """

    enabled: bool = False
    max_in_flight: int = 2
    staleness: str = "strict"

    def __post_init__(self):
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        mode, _, bound = str(self.staleness).partition(":")
        if mode not in ASYNC_STALENESS_MODES:
            raise ValueError(
                f"unknown staleness mode: {mode!r} "
                f"(choose from {ASYNC_STALENESS_MODES})"
            )
        if bound:
            try:
                parsed = int(bound)
            except ValueError:
                raise ValueError(
                    f"staleness bound must be an integer, got {bound!r}"
                ) from None
            if parsed < 0:
                raise ValueError("staleness bound must be non-negative")
            if mode == "strict":
                raise ValueError("strict staleness admits no bound")

    def trainer_kwargs(self) -> dict:
        """Keyword arguments for the async trainers."""
        return {
            "max_in_flight": self.max_in_flight,
            "staleness": self.staleness,
        }

    def to_dict(self) -> dict:
        """JSON-serializable form (``ExecutionPlan.to_dict`` nests it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AsyncConfig":
        return _config_from_dict(cls, data)


#: Observability modes the ``obs=`` plan axis understands
#: (``trace``/``metrics``, joined with ``+`` for both).
OBS_MODES = ("trace", "metrics")


@dataclass(frozen=True)
class ObservabilityConfig:
    """What the run's observability hub records (``repro.obs``).

    ``metrics`` populates the in-process :class:`repro.obs.
    MetricsRegistry` (engine gauges, counters, histograms);
    ``trace`` additionally records thread-aware spans for a Chrome
    trace-event export.  At least one must be on — a config with both
    off is the ``obs=None`` axis, spelled ``None`` on the plan like
    every other disabled axis.
    """

    trace: bool = False
    metrics: bool = True

    def __post_init__(self):
        if not (self.trace or self.metrics):
            raise ValueError(
                "observability axis is present but records nothing; "
                "enable trace and/or metrics, or use obs=None"
            )

    def modes(self) -> tuple:
        """The enabled modes, in canonical (spec) order."""
        return tuple(
            mode for mode in OBS_MODES if getattr(self, mode)
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (``ExecutionPlan.to_dict`` nests it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ObservabilityConfig":
        return _config_from_dict(cls, data)


@dataclass(frozen=True)
class ServeConfig:
    """How a session's serving handles are fronted (``repro.serve``).

    ``cache_rows`` sizes the :class:`repro.serve.HotRowCache` put in
    front of each serving engine's memo; ``admission`` is the
    slow-path serve count a row needs before it may be admitted (the
    TinyLFU-style skew filter).  A session without the axis serves
    uncached — spelled ``serve=None`` on the plan like every other
    disabled axis.
    """

    cache_rows: int = 1024
    admission: int = 2

    def __post_init__(self):
        if self.cache_rows < 1:
            raise ValueError("serve axis requires a positive cache_rows")
        if self.admission < 1:
            raise ValueError("serve admission threshold must be positive")

    def to_dict(self) -> dict:
        """JSON-serializable form (``ExecutionPlan.to_dict`` nests it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        return _config_from_dict(cls, data)


def rows_for_model_bytes(model_bytes: int, num_tables: int = PAPER_NUM_TABLES,
                         dim: int = PAPER_EMBEDDING_DIM,
                         bytes_per_param: int = FP32_BYTES) -> int:
    """Rows per table so that all tables together occupy ``model_bytes``."""
    return int(model_bytes // (num_tables * dim * bytes_per_param))


def mlperf_dlrm(model_bytes: int = PAPER_DEFAULT_MODEL_BYTES,
                lookups_per_table: int = PAPER_DEFAULT_LOOKUPS,
                name: str | None = None) -> DLRMConfig:
    """The paper's default MLPerf DLRM geometry at a chosen capacity.

    ``model_bytes`` only changes row counts, mirroring how the paper scales
    its 96 GB default down to 96 MB (Section 4) and up to 192 GB
    (Figure 13a).
    """
    rows = rows_for_model_bytes(model_bytes)
    gigabytes = model_bytes / 1e9
    return DLRMConfig(
        name=name or f"mlperf-dlrm-{gigabytes:g}GB",
        dense_features=PAPER_DENSE_FEATURES,
        bottom_mlp=PAPER_MLP_BOTTOM,
        embedding_dim=PAPER_EMBEDDING_DIM,
        table_rows=(rows,) * PAPER_NUM_TABLES,
        lookups_per_table=lookups_per_table,
        top_mlp=PAPER_MLP_TOP,
    )


def tiny_dlrm(num_tables: int = 3, rows: int = 64, dim: int = 8,
              lookups: int = 2, name: str = "tiny-dlrm") -> DLRMConfig:
    """A deliberately small geometry for unit tests and quick examples."""
    return DLRMConfig(
        name=name,
        dense_features=4,
        bottom_mlp=(8, dim),
        embedding_dim=dim,
        table_rows=(rows,) * num_tables,
        lookups_per_table=lookups,
        top_mlp=(16, 1),
    )


def small_dlrm(rows: int = 4096, name: str = "small-dlrm") -> DLRMConfig:
    """Mid-size runnable geometry for the measured benchmark mode."""
    return DLRMConfig(
        name=name,
        dense_features=13,
        bottom_mlp=(64, 32),
        embedding_dim=32,
        table_rows=(rows,) * 8,
        lookups_per_table=1,
        top_mlp=(64, 32, 1),
    )


# ---------------------------------------------------------------------------
# DeepRecSys-style configurations (paper Figure 13c; Gupta et al. [26, 27]).
#
# The paper reports speedups for three alternative DLRM classes, RMC1-RMC3,
# without restating their hyperparameters.  Following DeepRecSys's published
# characterisation we keep their defining shapes — RMC1: few small tables
# with moderate pooling; RMC2: many-lookup, embedding-dominated; RMC3: few
# but very large tables with small pooling — and size them so the embedding
# capacity ordering (RMC3 >> RMC1 > RMC2-per-lookup cost) matches.  These
# are documented approximations (DESIGN.md Section 6).
# ---------------------------------------------------------------------------

def rmc1(model_bytes: int = 36 * 10**9) -> DLRMConfig:
    """RMC1: compact MLPs, 10 tables, moderate pooling."""
    dim = 64
    num_tables = 10
    rows = int(model_bytes // (num_tables * dim * FP32_BYTES))
    return DLRMConfig(
        name="rmc1",
        dense_features=13,
        bottom_mlp=(128, 64, dim),
        embedding_dim=dim,
        table_rows=(rows,) * num_tables,
        lookups_per_table=4,
        top_mlp=(256, 64, 1),
    )


def rmc2(model_bytes: int = 60 * 10**9) -> DLRMConfig:
    """RMC2: embedding-heavy with large pooling (many lookups per table)."""
    dim = 64
    num_tables = 40
    rows = int(model_bytes // (num_tables * dim * FP32_BYTES))
    return DLRMConfig(
        name="rmc2",
        dense_features=13,
        bottom_mlp=(256, 128, dim),
        embedding_dim=dim,
        table_rows=(rows,) * num_tables,
        lookups_per_table=16,
        top_mlp=(512, 128, 1),
    )


def rmc3(model_bytes: int = 104 * 10**9) -> DLRMConfig:
    """RMC3: few, very large tables with single lookups."""
    dim = 128
    num_tables = 10
    rows = int(model_bytes // (num_tables * dim * FP32_BYTES))
    return DLRMConfig(
        name="rmc3",
        dense_features=13,
        bottom_mlp=(512, 256, dim),
        embedding_dim=dim,
        table_rows=(rows,) * num_tables,
        lookups_per_table=1,
        top_mlp=(1024, 512, 1),
    )


# Table-size sweep of the characterisation study (Section 4, Figure 3).
CHARACTERIZATION_MODEL_BYTES = (
    96 * 10**6,      # 96 MB   (1000x down)
    960 * 10**6,     # 960 MB  (100x down)
    int(9.6 * 10**9),  # 9.6 GB (10x down)
    96 * 10**9,      # 96 GB   (default)
)

# Sensitivity sweep of Figure 13(a).
SENSITIVITY_MODEL_BYTES = (
    24 * 10**9,
    48 * 10**9,
    96 * 10**9,
    192 * 10**9,
)

# Figure 13(b) pooling sweep.
SENSITIVITY_POOLING = (1, 10, 20, 30)

# Figures 10/12/14 batch sweep.
EVALUATION_BATCH_SIZES = (1024, 2048, 4096)
