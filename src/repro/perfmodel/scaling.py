"""Beyond-the-paper scaling projections.

The paper's closing argument (Sections 4.2 and 7.3): noise sampling and
noisy-update overheads "will only get worse for future RecSys models with
even larger table sizes" [46, 67] — industrial models already reach
TB-scale.  This module extends the calibrated timeline to those scales
and answers the questions the paper's Figure 13(a) stops short of:

* how the DP-SGD tax grows from 24 GB to 2 TB (given enough host memory),
* where eager DP-SGD runs out of memory on realistic hosts,
* the break-even analysis: how *small* a table would have to be before
  eager DP-SGD's simplicity beats LazyDP's bookkeeping overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..configs import mlperf_dlrm
from .hardware import HardwareSpec, paper_system
from .timeline import end_to_end_seconds, iteration_breakdown

#: Projection sweep: today's default through near-future TB-scale.
PROJECTION_MODEL_BYTES = (
    24 * 10**9, 96 * 10**9, 384 * 10**9, 10**12, 2 * 10**12,
)


@dataclass(frozen=True)
class ScalingPoint:
    """Modelled behaviour of one algorithm at one model capacity."""

    model_bytes: int
    algorithm: str
    seconds_per_iteration: float   # inf when OOM
    speedup_vs_dpsgd: float | None

    @property
    def oom(self) -> bool:
        return self.seconds_per_iteration == float("inf")


def _with_capacity(hw: HardwareSpec, capacity_bytes: int) -> HardwareSpec:
    return replace(hw, cpu=replace(hw.cpu, dram_capacity=capacity_bytes))


def project_scaling(batch: int = 2048, hw: HardwareSpec | None = None,
                    host_capacity_bytes: int | None = None,
                    sizes=PROJECTION_MODEL_BYTES) -> list:
    """ScalingPoints for LazyDP and DP-SGD(F) across model capacities.

    ``host_capacity_bytes`` overrides the host DRAM (default: a 4 TB
    future host so the *compute* scaling is visible past the paper's
    256 GB OOM wall; pass the paper value to reproduce the wall itself).
    """
    hw = hw or paper_system()
    if host_capacity_bytes is not None:
        hw = _with_capacity(hw, host_capacity_bytes)
    else:
        hw = _with_capacity(hw, 4 * 10**12)
    points = []
    for size in sizes:
        config = mlperf_dlrm(int(size))
        eager = end_to_end_seconds("dpsgd_f", config, batch, hw=hw)
        lazy = end_to_end_seconds("lazydp", config, batch, hw=hw)
        points.append(ScalingPoint(int(size), "dpsgd_f", eager, None))
        points.append(ScalingPoint(
            int(size), "lazydp", lazy,
            None if eager == float("inf") else eager / lazy,
        ))
    return points


def oom_capacity_bytes(algorithm: str, hw: HardwareSpec | None = None,
                       batch: int = 2048,
                       tolerance: float = 0.01) -> float:
    """Largest model (bytes) the algorithm can train on the given host.

    Bisection over capacity; reproduces the paper's 192 GB failure for
    eager DP-SGD on the 256 GB host and quantifies LazyDP's headroom.
    """
    hw = hw or paper_system()
    low, high = 10**9, float(hw.cpu.dram_capacity) * 2

    def fits(size: float) -> bool:
        config = mlperf_dlrm(int(size))
        return not iteration_breakdown(algorithm, config, batch, hw=hw).oom

    if not fits(low):
        raise ValueError("even a 1 GB model does not fit")
    while high / low > 1 + tolerance:
        mid = (low * high) ** 0.5
        if fits(mid):
            low = mid
        else:
            high = mid
    return low


def break_even_model_bytes(batch: int = 2048,
                           hw: HardwareSpec | None = None,
                           tolerance: float = 0.01) -> float:
    """Model size below which eager DP-SGD(F) is *faster* than LazyDP.

    LazyDP pays fixed bookkeeping (dedup, history, an extra row-set of
    sparse updates); for small enough tables the dense update is cheaper.
    The crossover quantifies "how sparse does the problem need to be" —
    far below any production model, which is the point.
    """
    hw = hw or paper_system()

    def lazydp_wins(size: float) -> bool:
        config = mlperf_dlrm(max(int(size), 10**6))
        eager = end_to_end_seconds("dpsgd_f", config, batch, hw=hw)
        lazy = end_to_end_seconds("lazydp", config, batch, hw=hw)
        return lazy < eager

    low, high = 10**6, 96 * 10**9
    if lazydp_wins(low):
        return float(low)  # LazyDP wins even at 1 MB of tables
    while high / low > 1 + tolerance:
        mid = (low * high) ** 0.5
        if lazydp_wins(mid):
            high = mid
        else:
            low = mid
    return high
