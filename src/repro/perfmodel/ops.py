"""Per-operation cost primitives for the hybrid CPU-GPU timeline model.

Every primitive returns seconds for one invocation, derived from the
hardware roofline (``repro.perfmodel.hardware``): streaming operations are
bandwidth-bound, the Box-Muller kernel is compute-bound at 101 AVX ops per
element, GEMMs ride the GPU's effective FLOP rate, and host-device traffic
crosses PCIe.  The timeline model composes these into per-iteration stage
breakdowns (paper Figures 3, 5, 10-14).
"""

from __future__ import annotations

from ..configs import FP32_BYTES, DLRMConfig
from ..rng.boxmuller import BOX_MULLER_AVX_OPS
from .hardware import HardwareSpec


def cpu_stream_seconds(num_bytes: float, hw: HardwareSpec) -> float:
    """Time to stream ``num_bytes`` through the CPU's DRAM interface."""
    return num_bytes / hw.cpu.effective_bandwidth


def cpu_avx_seconds(flops: float, hw: HardwareSpec) -> float:
    """Time for a compute-bound AVX kernel executing ``flops``."""
    return flops / (hw.cpu.effective_gflops * 1e9)


def gpu_compute_seconds(flops: float, hw: HardwareSpec) -> float:
    return flops / hw.gpu.effective_flops


def pcie_seconds(num_bytes: float, hw: HardwareSpec) -> float:
    return num_bytes / hw.pcie_bandwidth


# ---------------------------------------------------------------------------
# Embedding-side primitives (run on the CPU)
# ---------------------------------------------------------------------------

def random_row_touch_seconds(num_rows: float, dim: int, accesses_per_row: float,
                             hw: HardwareSpec) -> float:
    """Cost of touching rows at random addresses.

    Each touched row pays the larger of its streaming time and one DRAM
    random access; gathers and sparse updates are latency-bound for small
    rows, which is what makes SGD (and LazyDP) scale with the pooling
    factor in Figure 13(b).
    """
    row_bytes = dim * FP32_BYTES
    per_access = max(
        row_bytes / hw.cpu.effective_bandwidth, hw.cpu.row_access_latency
    )
    return num_rows * accesses_per_row * per_access


def embedding_gather_seconds(batch: int, config: DLRMConfig,
                             hw: HardwareSpec) -> float:
    """Gather + pool: one random row read per lookup, one pooled write."""
    lookups = batch * config.num_tables * config.lookups_per_table
    gather = random_row_touch_seconds(
        lookups, config.embedding_dim, 1.0, hw
    )
    pooled_bytes = batch * config.num_tables * config.embedding_dim * FP32_BYTES
    return gather + cpu_stream_seconds(pooled_bytes, hw)


def sparse_row_update_seconds(num_rows: float, dim: int,
                              hw: HardwareSpec) -> float:
    """Scatter updates into ``num_rows`` table rows.

    Each row is read and written at a random address, plus the update
    values themselves stream in.
    """
    touch = random_row_touch_seconds(num_rows, dim, 2.0, hw)
    return touch + cpu_stream_seconds(num_rows * dim * FP32_BYTES, hw)


def noise_sampling_seconds(num_elements: float, hw: HardwareSpec) -> float:
    """Box-Muller over ``num_elements`` scalars: 101 AVX ops each
    (paper Section 4.3) at the measured 81%-of-peak efficiency."""
    return cpu_avx_seconds(num_elements * BOX_MULLER_AVX_OPS, hw)


def noisy_grad_generation_seconds(num_elements: float,
                                  hw: HardwareSpec) -> float:
    """Merge gradient and noise into the noisy gradient: two streams
    per element (read gradient, write noisy gradient; the noise value
    arrives fused from the sampling stage)."""
    return cpu_stream_seconds(2.0 * num_elements * FP32_BYTES, hw)


def noisy_grad_update_seconds(num_elements: float,
                              hw: HardwareSpec) -> float:
    """Apply the noisy gradient: read it, read the weight, write the
    weight — the memory-bound streaming kernel of Figure 6 (N = 2)."""
    return cpu_stream_seconds(3.0 * num_elements * FP32_BYTES, hw)


# ---------------------------------------------------------------------------
# MLP-side primitives (run on the GPU)
# ---------------------------------------------------------------------------

def mlp_multiplies(config: DLRMConfig) -> int:
    """Total multiply count of one example's forward pass through the MLPs."""
    return int(sum(fan_in * fan_out for fan_in, fan_out in config.mlp_layer_dims()))


def interaction_multiplies(config: DLRMConfig) -> int:
    """Pairwise-dot feature interaction cost per example."""
    features = config.interaction_features
    return features * features * config.embedding_dim


def mlp_forward_seconds(batch: int, config: DLRMConfig,
                        hw: HardwareSpec) -> float:
    flops = 2.0 * batch * (mlp_multiplies(config) + interaction_multiplies(config))
    return gpu_compute_seconds(flops, hw)


def mlp_backward_seconds(batch: int, config: DLRMConfig,
                         hw: HardwareSpec) -> float:
    """Standard backward: activation grads + weight grads = 2x forward."""
    return 2.0 * mlp_forward_seconds(batch, config, hw)


def per_example_grad_traffic_seconds(batch: int, config: DLRMConfig,
                                     hw: HardwareSpec) -> float:
    """DP-SGD(B)'s extra HBM traffic for materialised per-example grads.

    Writes one full MLP gradient per example, reads them back for norms,
    reads again for the weighted reduction — 3 passes over
    ``batch * mlp_params`` floats.
    """
    num_bytes = 3.0 * batch * config.mlp_params * FP32_BYTES
    return num_bytes / hw.gpu.hbm_bandwidth


def embeddings_pcie_seconds(batch: int, config: DLRMConfig,
                            hw: HardwareSpec) -> float:
    """Pooled embeddings (and their grads on the way back) cross PCIe."""
    num_bytes = batch * config.num_tables * config.embedding_dim * FP32_BYTES
    return pcie_seconds(num_bytes, hw)
