"""Per-iteration stage timelines for every training algorithm.

``iteration_breakdown`` composes the op-cost primitives into the stage
structure of the paper's figures: forward, per-example backward, per-batch
backward, and the model-update sub-stages (gradient coalescing, noise
sampling, noisy gradient generation, noisy gradient update), plus LazyDP's
bookkeeping overheads and an "else" bucket holding calibrated framework
costs.  All figure benchmarks are thin sweeps over this function.

Algorithms
----------
``sgd``            non-private baseline, sparse updates
``dpsgd_b``        original DP-SGD (materialised per-example grads) [1]
``dpsgd_r``        reweighted DP-SGD [40]
``dpsgd_f``        ghost-norm DP-SGD [13] (the paper's main baseline)
``eana``           accessed-rows-only noise [52]
``lazydp``         this paper, with aggregated noise sampling
``lazydp_no_ans``  this paper, lazy update only (ablation)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..configs import DLRMConfig
from ..data.skew import SkewSpec, expected_unique_rows
from .hardware import DEFAULT_CALIBRATION, HardwareSpec, SoftwareCalibration, paper_system
from . import ops
from .memory import fits_in_host_memory

ALGORITHMS = (
    "sgd", "dpsgd_b", "dpsgd_r", "dpsgd_f",
    "eana", "lazydp", "lazydp_no_ans",
)

PRIVATE_ALGORITHMS = tuple(a for a in ALGORITHMS if a != "sgd")

MODEL_UPDATE_STAGES = (
    "grad_coalescing",
    "noise_sampling",
    "noisy_grad_generation",
    "noisy_grad_update",
    "model_update_else",
    "lazydp_dedup",
    "lazydp_history_read",
    "lazydp_history_update",
)

LAZYDP_OVERHEAD_STAGES = (
    "lazydp_dedup", "lazydp_history_read", "lazydp_history_update",
)


@dataclass
class StageBreakdown:
    """Modelled per-iteration latency, split by pipeline stage."""

    algorithm: str
    config_name: str
    batch: int
    stages: dict = field(default_factory=dict)
    oom: bool = False

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def stage(self, name: str) -> float:
        return self.stages.get(name, 0.0)

    def model_update_total(self) -> float:
        return sum(self.stages.get(s, 0.0) for s in MODEL_UPDATE_STAGES)

    def lazydp_overhead_total(self) -> float:
        return sum(self.stages.get(s, 0.0) for s in LAZYDP_OVERHEAD_STAGES)

    def grouped(self) -> dict:
        """Coarse grouping used by Figures 3 and 10 (four bar segments)."""
        return {
            "fwd": self.stage("fwd"),
            "bwd_per_example": self.stage("bwd_per_example"),
            "bwd_per_batch": self.stage("bwd_per_batch"),
            "model_update": self.model_update_total() + self.stage("else"),
        }


def _unique_rows_per_iteration(config: DLRMConfig, batch: int,
                               skew: SkewSpec | None) -> float:
    """Expected unique rows gathered per iteration, summed over tables."""
    draws = batch * config.lookups_per_table
    total = 0.0
    for rows in config.table_rows:
        total += expected_unique_rows(rows, draws, skew)
    return total


def iteration_breakdown(algorithm: str, config: DLRMConfig, batch: int,
                        hw: HardwareSpec | None = None,
                        calibration: SoftwareCalibration | None = None,
                        skew: SkewSpec | None = None) -> StageBreakdown:
    """Model one training iteration's latency for ``algorithm``.

    Returns a :class:`StageBreakdown`; if the algorithm's working set
    exceeds host DRAM the breakdown is flagged ``oom`` with zero stages
    (Figure 13a's 192 GB point).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm: {algorithm}")
    hw = hw or paper_system()
    calibration = calibration or DEFAULT_CALIBRATION

    breakdown = StageBreakdown(algorithm, config.name, batch)
    if not fits_in_host_memory(algorithm, config, batch, hw):
        breakdown.oom = True
        return breakdown

    stages = breakdown.stages
    dim = config.embedding_dim
    table_elements = float(config.total_embedding_params)
    lookups = batch * config.num_tables * config.lookups_per_table
    unique_rows = _unique_rows_per_iteration(config, batch, skew)
    unique_elements = unique_rows * dim

    # ---- forward propagation (shared by every algorithm) ----------------
    stages["fwd"] = (
        ops.embedding_gather_seconds(batch, config, hw)
        + ops.embeddings_pcie_seconds(batch, config, hw)
        + ops.mlp_forward_seconds(batch, config, hw)
    )

    # ---- backward propagation -------------------------------------------
    if algorithm == "sgd":
        stages["bwd_per_batch"] = (
            ops.mlp_backward_seconds(batch, config, hw)
            + ops.embeddings_pcie_seconds(batch, config, hw)
        )
    else:
        # Norm-derivation pass: activation backprop plus variant-specific
        # per-example work (the calibrated clipping-pipeline overheads).
        per_example_extra = {
            "dpsgd_b": calibration.dpsgd_b_extra_per_example_s,
            "dpsgd_r": calibration.dpsgd_r_extra_per_example_s,
        }.get(algorithm, calibration.dpsgd_f_extra_per_example_s)
        norm_pass = ops.mlp_forward_seconds(batch, config, hw)
        if algorithm == "dpsgd_b":
            norm_pass += ops.per_example_grad_traffic_seconds(batch, config, hw)
        elif algorithm == "dpsgd_r":
            norm_pass += ops.mlp_backward_seconds(batch, config, hw)
        stages["bwd_per_example"] = norm_pass + batch * per_example_extra
        stages["bwd_per_batch"] = (
            ops.mlp_backward_seconds(batch, config, hw)
            + ops.embeddings_pcie_seconds(batch, config, hw)
        )

    # ---- model update -----------------------------------------------------
    lookup_bytes = lookups * dim * 4.0
    stages["grad_coalescing"] = ops.cpu_stream_seconds(2.0 * lookup_bytes, hw)

    if algorithm == "sgd":
        stages["noisy_grad_update"] = ops.sparse_row_update_seconds(
            unique_rows, dim, hw
        )
        stages["else"] = (
            calibration.framework_fixed_s
            + batch * calibration.sgd_per_example_s
        )
        return breakdown

    if algorithm in ("dpsgd_b", "dpsgd_r", "dpsgd_f"):
        # Dense noisy update over the full table (paper Figure 4b).
        stages["noise_sampling"] = ops.noise_sampling_seconds(table_elements, hw)
        stages["noisy_grad_generation"] = ops.noisy_grad_generation_seconds(
            table_elements, hw
        )
        stages["noisy_grad_update"] = ops.noisy_grad_update_seconds(
            table_elements, hw
        )
        stages["model_update_else"] = calibration.model_update_fixed_s
        stages["else"] = (
            calibration.framework_fixed_s
            + batch * calibration.sgd_per_example_s
        )
        return breakdown

    if algorithm == "eana":
        stages["noise_sampling"] = ops.noise_sampling_seconds(unique_elements, hw)
        stages["noisy_grad_generation"] = ops.noisy_grad_generation_seconds(
            unique_elements, hw
        )
        stages["noisy_grad_update"] = ops.sparse_row_update_seconds(
            unique_rows, dim, hw
        )
        stages["else"] = (
            calibration.framework_fixed_s
            + batch * calibration.sgd_per_example_s
            + calibration.dp_sparse_fixed_s
        )
        return breakdown

    # ---- LazyDP (with or without ANS) -------------------------------------
    # Catch-up noise covers the *next* batch's unique rows; gradient covers
    # the current batch's.  Both are the same expected size.
    stages["lazydp_dedup"] = (
        calibration.lazydp_dedup_fixed_s
        + lookups * calibration.lazydp_dedup_s_per_lookup
    )
    stages["lazydp_history_read"] = (
        calibration.lazydp_history_read_fixed_s
        + unique_rows * calibration.lazydp_history_read_s_per_row
    )
    stages["lazydp_history_update"] = (
        calibration.lazydp_history_update_fixed_s
        + unique_rows * calibration.lazydp_history_update_s_per_row
    )
    if algorithm == "lazydp":
        noise_elements = unique_elements
    else:
        # Without ANS every deferred draw is materialised individually; in
        # steady state the draw rate approaches one per table element per
        # iteration (DESIGN.md: calibrated steady-state factor).
        noise_elements = min(
            table_elements * calibration.ans_off_steady_state_factor,
            table_elements,
        )
    stages["noise_sampling"] = ops.noise_sampling_seconds(noise_elements, hw)
    stages["noisy_grad_generation"] = ops.noisy_grad_generation_seconds(
        2.0 * unique_elements, hw
    )
    stages["noisy_grad_update"] = ops.sparse_row_update_seconds(
        2.0 * unique_rows, dim, hw
    )
    stages["else"] = (
        calibration.framework_fixed_s
        + batch * calibration.sgd_per_example_s
        + calibration.dp_sparse_fixed_s
    )
    return breakdown


def end_to_end_seconds(algorithm: str, config: DLRMConfig, batch: int,
                       **kwargs) -> float:
    """Convenience: total modelled iteration latency (inf when OOM)."""
    breakdown = iteration_breakdown(algorithm, config, batch, **kwargs)
    if breakdown.oom:
        return float("inf")
    return breakdown.total
