"""Calibrated performance model of the paper's CPU-GPU training system."""

from .energy import average_power_watts, iteration_energy_joules, stage_power_watts
from .hardware import (
    CPUSpec,
    DEFAULT_CALIBRATION,
    GPUSpec,
    HardwareSpec,
    PowerSpec,
    SoftwareCalibration,
    paper_system,
)
from .memory import (
    fits_in_host_memory,
    history_table_bytes,
    input_queue_bytes,
    lazydp_metadata_fraction,
    required_host_bytes,
    table_bytes,
)
from .roofline import (
    effective_avx_gflops,
    noise_sampling_throughput,
    noisy_update_throughput,
    ridge_point,
    sweep,
)
from .scaling import (
    ScalingPoint,
    break_even_model_bytes,
    oom_capacity_bytes,
    project_scaling,
)
from .sensitivity import (
    conclusions_hold,
    headline_speedup,
    perturbed_calibration,
    sensitivity_sweep,
)
from .timeline import (
    ALGORITHMS,
    LAZYDP_OVERHEAD_STAGES,
    MODEL_UPDATE_STAGES,
    PRIVATE_ALGORITHMS,
    StageBreakdown,
    end_to_end_seconds,
    iteration_breakdown,
)

__all__ = [
    "average_power_watts",
    "iteration_energy_joules",
    "stage_power_watts",
    "CPUSpec",
    "DEFAULT_CALIBRATION",
    "GPUSpec",
    "HardwareSpec",
    "PowerSpec",
    "SoftwareCalibration",
    "paper_system",
    "fits_in_host_memory",
    "history_table_bytes",
    "input_queue_bytes",
    "lazydp_metadata_fraction",
    "required_host_bytes",
    "table_bytes",
    "effective_avx_gflops",
    "noise_sampling_throughput",
    "noisy_update_throughput",
    "ridge_point",
    "sweep",
    "ScalingPoint",
    "break_even_model_bytes",
    "oom_capacity_bytes",
    "project_scaling",
    "conclusions_hold",
    "headline_speedup",
    "perturbed_calibration",
    "sensitivity_sweep",
    "ALGORITHMS",
    "LAZYDP_OVERHEAD_STAGES",
    "MODEL_UPDATE_STAGES",
    "PRIVATE_ALGORITHMS",
    "StageBreakdown",
    "end_to_end_seconds",
    "iteration_breakdown",
]
