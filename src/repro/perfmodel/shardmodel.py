"""Performance model of the sharded embedding engine (``repro.shard``).

Projects per-shard memory footprints and model-update traffic at paper
scale, where the flat arrays of :mod:`repro.shard` cannot be
instantiated.  Two questions it answers:

* **Capacity** — with each shard hosted on its own node (or NUMA
  domain), what model sizes fit?  Figure 13(a)'s 192 GB configuration
  OOMs the paper's single 256 GB host for eager DP-SGD; sharding LazyDP
  across a handful of hosts restores headroom and scales on.
* **Latency** — what does the per-iteration lazy model update cost per
  shard, and what is the parallel-executor critical path?  Each shard
  catches up only the next batch's rows it owns, so per-shard time
  shrinks ~linearly while the routing step (splitting the index stream)
  grows only with the batch's lookups.

The model composes the same op-cost primitives as
:mod:`repro.perfmodel.timeline`, so sharded and flat projections share
one calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..configs import DLRMConfig
from ..data.skew import SkewSpec
from . import ops
from .hardware import DEFAULT_CALIBRATION, HardwareSpec, SoftwareCalibration, paper_system
from .memory import (
    history_table_bytes,
    input_queue_bytes,
    table_bytes,
)
from .timeline import _unique_rows_per_iteration


def per_shard_table_bytes(config: DLRMConfig, num_shards: int) -> int:
    """One shard's slice of the embedding tables (row-balanced plan)."""
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    return -(-table_bytes(config) // num_shards)   # ceil division


def per_shard_history_bytes(config: DLRMConfig, num_shards: int) -> int:
    """One shard's HistoryTable slice (4 bytes per owned row)."""
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    return -(-history_table_bytes(config) // num_shards)


def sharded_host_bytes(config: DLRMConfig, batch: int,
                       num_shards: int) -> int:
    """Peak per-host footprint of one shard of LazyDP training.

    Each host holds its table slice, its HistoryTable slice, the full
    routed index stream (worst case: every lookup lands on this shard)
    and the per-batch sparse buffers for its share of the update.
    """
    lookups = batch * config.num_tables * config.lookups_per_table
    sparse_buffers = -(-4 * lookups * config.embedding_dim * 4 // num_shards)
    return (
        per_shard_table_bytes(config, num_shards)
        + per_shard_history_bytes(config, num_shards)
        + 2 * input_queue_bytes(batch, config)
        + sparse_buffers
    )


def fits_when_sharded(config: DLRMConfig, batch: int, num_shards: int,
                      hw: HardwareSpec | None = None) -> bool:
    """Does one shard of the model fit a single host's DRAM?"""
    hw = hw or paper_system()
    return sharded_host_bytes(config, batch, num_shards) <= hw.cpu.dram_capacity


def min_shards_to_fit(config: DLRMConfig, batch: int,
                      hw: HardwareSpec | None = None,
                      max_shards: int = 1024) -> int | None:
    """Smallest shard count whose per-host slice fits DRAM (None if none)."""
    for num_shards in range(1, max_shards + 1):
        if fits_when_sharded(config, batch, num_shards, hw):
            return num_shards
    return None


@dataclass
class ShardUpdateBreakdown:
    """Modelled per-iteration cost of the sharded lazy model update."""

    config_name: str
    batch: int
    num_shards: int
    routing_seconds: float
    per_shard_seconds: float        # one shard's stages 2-6
    stages: dict = field(default_factory=dict)   # per-shard stage split

    @property
    def critical_path_seconds(self) -> float:
        """Parallel executor: routing + the slowest shard."""
        return self.routing_seconds + self.per_shard_seconds

    @property
    def serial_seconds(self) -> float:
        """Serial executor: routing + every shard in turn."""
        return self.routing_seconds + self.num_shards * self.per_shard_seconds

    @property
    def parallel_speedup(self) -> float:
        return self.serial_seconds / self.critical_path_seconds


def sharded_update_breakdown(config: DLRMConfig, batch: int,
                             num_shards: int,
                             hw: HardwareSpec | None = None,
                             calibration: SoftwareCalibration | None = None,
                             skew: SkewSpec | None = None
                             ) -> ShardUpdateBreakdown:
    """Model the sharded lazy model update's per-shard latency.

    Assumes a balanced plan (row_range on uniform traces, frequency on
    skewed ones): each shard owns ``1/num_shards`` of the expected unique
    rows.  Routing is a streaming pass over the batch's index arrays and
    is not sharded — it is the sequential prologue of every iteration.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    hw = hw or paper_system()
    calibration = calibration or DEFAULT_CALIBRATION

    dim = config.embedding_dim
    unique_rows = _unique_rows_per_iteration(config, batch, skew)
    shard_rows = unique_rows / num_shards
    shard_elements = shard_rows * dim

    # Routing: a counting-sort over the *deduped* index arrays (owner
    # lookup, bucketed copy, origin permutation) for the next batch's
    # rows and the gradient's rows — 3 int64 streams each, read+write.
    routing = ops.cpu_stream_seconds(
        2.0 * unique_rows * 6 * 8.0, hw
    ) + calibration.lazydp_dedup_fixed_s if num_shards > 1 else 0.0

    stages = {
        "lazydp_history_read": (
            calibration.lazydp_history_read_fixed_s
            + shard_rows * calibration.lazydp_history_read_s_per_row
        ),
        "lazydp_history_update": (
            calibration.lazydp_history_update_fixed_s
            + shard_rows * calibration.lazydp_history_update_s_per_row
        ),
        "noise_sampling": ops.noise_sampling_seconds(shard_elements, hw),
        "noisy_grad_generation": ops.noisy_grad_generation_seconds(
            2.0 * shard_elements, hw
        ),
        "noisy_grad_update": ops.sparse_row_update_seconds(
            2.0 * shard_rows, dim, hw
        ),
    }
    return ShardUpdateBreakdown(
        config_name=config.name,
        batch=batch,
        num_shards=num_shards,
        routing_seconds=routing,
        per_shard_seconds=sum(stages.values()),
        stages=stages,
    )


def shard_scaling_series(config: DLRMConfig, batch: int,
                         shard_counts: tuple = (1, 2, 4, 8, 16),
                         hw: HardwareSpec | None = None,
                         skew: SkewSpec | None = None) -> dict:
    """Critical-path and serial update seconds per shard count.

    Returns ``{num_shards: (critical_path_s, serial_s)}`` — the sweep
    behind ``benchmarks/bench_shard_scaling.py``'s model mode.
    """
    series = {}
    for num_shards in shard_counts:
        breakdown = sharded_update_breakdown(
            config, batch, num_shards, hw=hw, skew=skew
        )
        series[num_shards] = (
            breakdown.critical_path_seconds, breakdown.serial_seconds
        )
    return series
