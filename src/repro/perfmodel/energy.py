"""Energy model (paper Figure 12).

The paper measures wall power with pcm-power / nvidia-smi and multiplies by
training time; LazyDP's ~155x energy saving over DP-SGD(F) is therefore
mostly a time story, amplified slightly because DP-SGD's long model-update
phase keeps the CPU pinned in its AVX power state while the GPU idles.  We
integrate phase power over the modelled stage timeline: each stage maps to
a (CPU state, GPU state) pair whose combined draw comes from
:class:`repro.perfmodel.hardware.PowerSpec`.
"""

from __future__ import annotations

from .hardware import HardwareSpec
from .timeline import StageBreakdown

# stage -> (cpu_state, gpu_state); states index into PowerSpec fields.
STAGE_POWER_STATES = {
    "fwd": ("stream", "active"),
    "bwd_per_example": ("idle", "active"),
    "bwd_per_batch": ("stream", "active"),
    "grad_coalescing": ("stream", "idle"),
    "noise_sampling": ("avx", "idle"),
    "noisy_grad_generation": ("stream", "idle"),
    "noisy_grad_update": ("stream", "idle"),
    "model_update_else": ("stream", "idle"),
    "lazydp_dedup": ("stream", "idle"),
    "lazydp_history_read": ("stream", "idle"),
    "lazydp_history_update": ("stream", "idle"),
    "else": ("stream", "idle"),
}


def stage_power_watts(stage: str, hw: HardwareSpec) -> float:
    cpu_state, gpu_state = STAGE_POWER_STATES[stage]
    power = hw.power
    cpu_watts = {
        "idle": power.cpu_idle,
        "stream": power.cpu_stream,
        "avx": power.cpu_avx,
    }[cpu_state]
    gpu_watts = {
        "idle": power.gpu_idle,
        "active": power.gpu_active,
    }[gpu_state]
    return cpu_watts + gpu_watts


def iteration_energy_joules(breakdown: StageBreakdown,
                            hw: HardwareSpec) -> float:
    """Integrate phase power over one modelled iteration."""
    if breakdown.oom:
        return float("inf")
    return sum(
        seconds * stage_power_watts(stage, hw)
        for stage, seconds in breakdown.stages.items()
    )


def average_power_watts(breakdown: StageBreakdown,
                        hw: HardwareSpec) -> float:
    total = breakdown.total
    if total == 0.0:
        return 0.0
    return iteration_energy_joules(breakdown, hw) / total
