"""Memory-capacity model: OOM prediction and LazyDP's metadata overheads.

Reproduces two quantitative claims:

* Figure 13(a): DP-SGD(F) runs out of host memory at the 192 GB model —
  the dense noisy gradient is sized like the table, so eager DP-SGD needs
  roughly twice the model's footprint; SGD and LazyDP need ~1x and scale on.
* Section 7.2: LazyDP's metadata costs 213 KB for the input queue
  (one extra mini-batch of indices) and 751 MB for the HistoryTable
  (4 bytes per embedding row, <1% of the 96 GB model).
"""

from __future__ import annotations

from ..configs import FP32_BYTES, DLRMConfig
from .hardware import HardwareSpec

INDEX_BYTES = 4  # the paper's Section 7.2 arithmetic uses 4-byte indices

#: Algorithms whose model update materialises a dense table-sized tensor.
DENSE_UPDATE_ALGORITHMS = ("dpsgd_b", "dpsgd_r", "dpsgd_f")


def table_bytes(config: DLRMConfig) -> int:
    return config.embedding_bytes(FP32_BYTES)


def input_queue_bytes(batch: int, config: DLRMConfig) -> int:
    """One prefetched mini-batch of sparse indices (Section 7.2: 213 KB)."""
    return batch * config.num_tables * config.lookups_per_table * INDEX_BYTES


def history_table_bytes(config: DLRMConfig) -> int:
    """4 bytes per embedding row across all tables (Section 7.2: 751 MB)."""
    return config.total_embedding_rows * INDEX_BYTES


def lazydp_metadata_fraction(config: DLRMConfig, batch: int) -> float:
    """LazyDP metadata relative to model size (paper: <1% / <3.1%)."""
    metadata = history_table_bytes(config) + input_queue_bytes(batch, config)
    return metadata / table_bytes(config)


def required_host_bytes(algorithm: str, config: DLRMConfig,
                        batch: int) -> int:
    """Peak host-DRAM footprint of one training iteration.

    Eager DP-SGD variants hold the model *and* a dense noisy gradient of
    the same size; sparse-update algorithms hold the model plus per-batch
    buffers.
    """
    model = table_bytes(config)
    batch_rows = batch * config.num_tables * config.lookups_per_table
    sparse_buffers = 4 * batch_rows * config.embedding_dim * FP32_BYTES
    if algorithm in DENSE_UPDATE_ALGORITHMS:
        return 2 * model + sparse_buffers
    if algorithm in ("lazydp", "lazydp_no_ans"):
        return (
            model + sparse_buffers
            + history_table_bytes(config)
            + 2 * input_queue_bytes(batch, config)
        )
    return model + sparse_buffers


def fits_in_host_memory(algorithm: str, config: DLRMConfig, batch: int,
                        hw: HardwareSpec) -> bool:
    return required_host_bytes(algorithm, config, batch) <= hw.cpu.dram_capacity
