"""Hardware description of the paper's testbed (Section 6).

The evaluation system is a hybrid CPU-GPU trainer: an Intel Xeon E5-2698v4
(256 GB DDR4 at 68 GB/s) trains the embedding layers, an NVIDIA V100
(32 GB HBM2 at 900 GB/s) trains the MLPs, connected by PCIe 3.0 x16
(16 GB/s).  Constants flagged *measured* come straight from the paper's
characterisation (Figure 6); constants flagged *calibrated* are software
overhead terms fitted to the paper's reported normalised results (DESIGN.md
Section 2 explains why a roofline-plus-calibration model preserves the
figures' shapes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """Capacity-optimised CPU hosting the embedding tables."""

    name: str
    dram_bandwidth: float        # bytes/s
    dram_capacity: int           # bytes
    avx_peak_gflops: float       # theoretical peak vector throughput
    stream_efficiency: float     # fraction of bandwidth streaming kernels reach
    compute_efficiency: float    # fraction of peak compute-bound kernels reach
    # Effective cost of touching one embedding row at a random address.
    # Gathers are latency-bound, not streaming-bound: a 512 B row read pays
    # a (partially overlapped) DRAM access, so high-pooling workloads scale
    # with lookup count (Figure 13b's SGD curve).  *Calibrated* to that
    # curve's slope.
    row_access_latency: float = 80e-9

    @property
    def effective_bandwidth(self) -> float:
        return self.dram_bandwidth * self.stream_efficiency

    @property
    def effective_gflops(self) -> float:
        return self.avx_peak_gflops * self.compute_efficiency


@dataclass(frozen=True)
class GPUSpec:
    """Throughput-optimised GPU hosting the dense MLP layers."""

    name: str
    hbm_bandwidth: float         # bytes/s
    hbm_capacity: int            # bytes
    fp32_tflops: float           # peak fp32 throughput (TFLOP/s)
    compute_efficiency: float    # achieved fraction on GEMM-shaped work

    @property
    def effective_flops(self) -> float:
        return self.fp32_tflops * 1e12 * self.compute_efficiency


@dataclass(frozen=True)
class PowerSpec:
    """Phase-level wall power (watts) used by the energy model (Figure 12).

    These are system-level draws (package + DRAM + board) calibrated so
    that the modelled DP-SGD(F)/SGD energy ratio reproduces Figure 12's
    ~1.37x power amplification on top of the latency ratio: DP-SGD pins
    the CPU in its AVX power state for seconds while the GPU idles.
    """

    cpu_idle: float = 50.0
    cpu_stream: float = 95.0     # memory-bound phases (gather, noisy update)
    cpu_avx: float = 250.0       # compute-bound phases (Box-Muller sampling)
    gpu_idle: float = 25.0
    gpu_active: float = 185.0


@dataclass(frozen=True)
class HardwareSpec:
    """The full training system."""

    cpu: CPUSpec
    gpu: GPUSpec
    pcie_bandwidth: float        # bytes/s
    power: PowerSpec


def paper_system() -> HardwareSpec:
    """The exact system of Section 6.

    The CPU's AVX peak (265 GFLOPS) is back-solved from Figure 6: the
    noise-sampling kernel measures 215 GFLOPS at 81% of the achievable
    maximum.  Stream efficiency 0.855 is the paper's measured fraction of
    DRAM bandwidth for the noisy gradient update (Section 4.3).
    """
    return HardwareSpec(
        cpu=CPUSpec(
            name="Intel Xeon E5-2698v4",
            dram_bandwidth=68e9,
            dram_capacity=256 * 10**9,
            avx_peak_gflops=265.0,
            stream_efficiency=0.855,
            compute_efficiency=0.81,
        ),
        gpu=GPUSpec(
            name="NVIDIA V100",
            hbm_bandwidth=900e9,
            hbm_capacity=32 * 10**9,
            fp32_tflops=15.7,
            compute_efficiency=0.55,
        ),
        pcie_bandwidth=16e9,
        power=PowerSpec(),
    )


@dataclass(frozen=True)
class SoftwareCalibration:
    """Framework-overhead terms a pure roofline cannot see (*calibrated*).

    Real DP-SGD systems spend substantial time in per-example bookkeeping
    (hook dispatch, tensor allocation, norm reductions) that scales with
    batch size but not table size.  These constants are fitted once against
    the paper's published normalised results — primarily Figure 3's 96 MB
    operating point (where table-size terms vanish) and Figure 10's SGD
    batch scaling — then held fixed for every other figure, so all
    remaining structure in the reproduced curves comes from the roofline
    terms.
    """

    # Fixed per-iteration launch/dispatch cost (Fig 10: SGD batch scaling).
    # The SGD anchor this implies (~75 ms at batch 2048) is the one
    # consistent with the paper's own arithmetic: Figure 6's kernel
    # efficiencies put DP-SGD's noise+update at 16.2 s for 96 GB, and
    # Section 4.2 says those stages are 82.8% of an end-to-end iteration
    # that Figure 10 puts at 259x SGD.
    framework_fixed_s: float = 0.029
    # Non-roofline per-example cost of the SGD pipeline.
    sgd_per_example_s: float = 11.0e-6
    # Extra per-example cost of each DP variant's clipping pipeline
    # (Fig 3 at 96 MB: B ~ 10x SGD, F 1.5x faster than R; Fig 14 EANA).
    dpsgd_b_extra_per_example_s: float = 260.0e-6
    dpsgd_r_extra_per_example_s: float = 48.0e-6
    dpsgd_f_extra_per_example_s: float = 12.0e-6
    # Constant part of the dense model-update stage (Fig 5's "Else").
    model_update_fixed_s: float = 0.019
    # Fixed cost of the sparse DP update paths (EANA, LazyDP; Fig 14).
    dp_sparse_fixed_s: float = 0.016
    # LazyDP bookkeeping (Fig 11: ~15% overhead split 61 / 22 / 17 at the
    # default config; fixed launch cost plus a per-item slope).
    lazydp_dedup_fixed_s: float = 0.013
    lazydp_dedup_s_per_lookup: float = 6.5e-8
    lazydp_history_read_fixed_s: float = 0.0035
    lazydp_history_read_s_per_row: float = 2.0e-8
    lazydp_history_update_fixed_s: float = 0.0028
    lazydp_history_update_s_per_row: float = 1.5e-8
    # Steady-state fraction of eager noise draws still required when ANS
    # is disabled (Fig 10, LazyDP w/o ANS): every per-iteration noise value
    # must eventually be drawn, so the rate converges to one draw per table
    # element per iteration.
    ans_off_steady_state_factor: float = 1.0


DEFAULT_CALIBRATION = SoftwareCalibration()
