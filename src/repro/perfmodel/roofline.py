"""Roofline model of the CPU's AVX pipeline (paper Figure 6).

The paper's microbenchmark loads a vector, performs ``N`` AVX computations
on it, and stores the result; sweeping ``N`` traces the classic roofline:
memory-bound for small ``N`` (throughput grows linearly with arithmetic
intensity), compute-bound beyond the ridge point.  Noise sampling sits at
``N = 101`` (deep in the compute-bound region, 81% of peak) and the noisy
gradient update at ``N = 2`` (memory-bound, 85.5% of DRAM bandwidth).
"""

from __future__ import annotations

import numpy as np

from ..rng.boxmuller import BOX_MULLER_AVX_OPS, NOISY_UPDATE_AVX_OPS
from .hardware import HardwareSpec

#: Bytes moved per element by the microbenchmark: one fp32 load + one store.
MICROBENCH_BYTES_PER_ELEMENT = 8.0


def effective_avx_gflops(n_ops: float, hw: HardwareSpec) -> float:
    """Modelled effective AVX throughput at arithmetic intensity ``n_ops``.

    ``throughput = min(compute ceiling, N * effective bandwidth / bytes)``,
    with the paper's measured efficiency fractions applied to each ceiling.
    """
    if n_ops <= 0:
        return 0.0
    compute_ceiling = hw.cpu.effective_gflops
    memory_ceiling = (
        n_ops * hw.cpu.effective_bandwidth / MICROBENCH_BYTES_PER_ELEMENT / 1e9
    )
    return float(min(compute_ceiling, memory_ceiling))


def ridge_point(hw: HardwareSpec) -> float:
    """The N at which the microbenchmark turns compute-bound."""
    return (
        hw.cpu.effective_gflops * 1e9
        * MICROBENCH_BYTES_PER_ELEMENT
        / hw.cpu.effective_bandwidth
    )


def sweep(hw: HardwareSpec, n_values=None) -> tuple[np.ndarray, np.ndarray]:
    """(N values, effective GFLOPS) series reproducing Figure 6's curve."""
    if n_values is None:
        n_values = np.arange(0, 125, dtype=np.float64)
    n_values = np.asarray(n_values, dtype=np.float64)
    gflops = np.array(
        [effective_avx_gflops(n, hw) for n in n_values], dtype=np.float64
    )
    return n_values, gflops


def noise_sampling_throughput(hw: HardwareSpec) -> float:
    """Modelled throughput of the Box-Muller kernel (N = 101)."""
    return effective_avx_gflops(BOX_MULLER_AVX_OPS, hw)


def noisy_update_throughput(hw: HardwareSpec) -> float:
    """Modelled throughput of the streaming update kernel (N = 2)."""
    return effective_avx_gflops(NOISY_UPDATE_AVX_OPS, hw)
