"""Robustness of the reproduction to its calibration constants.

The performance model mixes first-principles roofline terms (bandwidths,
FLOP rates, byte counts — all from the paper's hardware table and
Figure 6) with a handful of *calibrated* software-overhead constants
(DESIGN.md / ``SoftwareCalibration``).  A fair question is whether the
headline conclusions depend on those fitted numbers.  This module
perturbs every calibrated constant and re-evaluates the conclusions; the
benchmark ``bench_ablation_sensitivity.py`` reports the result.

The expected finding (and what the tests assert): the two orders of
magnitude between LazyDP and eager DP-SGD come from the roofline terms —
noise volume and memory traffic proportional to table size — so the
conclusions survive +/-50% perturbations of every fitted constant.
"""

from __future__ import annotations

from dataclasses import fields, replace

from ..configs import DLRMConfig, mlperf_dlrm
from .hardware import DEFAULT_CALIBRATION, SoftwareCalibration
from .timeline import iteration_breakdown

#: Constants that were fitted to paper-reported results (all of them).
CALIBRATED_FIELDS = tuple(
    field.name for field in fields(SoftwareCalibration)
)


def perturbed_calibration(field_name: str,
                          factor: float) -> SoftwareCalibration:
    """A copy of the default calibration with one constant scaled."""
    if field_name not in CALIBRATED_FIELDS:
        raise ValueError(f"unknown calibration field: {field_name}")
    if factor <= 0:
        raise ValueError("factor must be positive")
    current = getattr(DEFAULT_CALIBRATION, field_name)
    return replace(DEFAULT_CALIBRATION, **{field_name: current * factor})


def headline_speedup(calibration: SoftwareCalibration | None = None,
                     config: DLRMConfig | None = None,
                     batch: int = 2048) -> float:
    """LazyDP's modelled speedup over DP-SGD(F) under a calibration."""
    config = config or mlperf_dlrm()
    lazy = iteration_breakdown(
        "lazydp", config, batch, calibration=calibration
    )
    eager = iteration_breakdown(
        "dpsgd_f", config, batch, calibration=calibration
    )
    return eager.total / lazy.total


def sensitivity_sweep(factors=(0.5, 0.75, 1.25, 1.5),
                      batch: int = 2048) -> list:
    """Perturb each calibrated constant; return [(field, factor, speedup)].

    The baseline (factor 1.0) row is included once at the front.
    """
    config = mlperf_dlrm()
    rows = [("baseline", 1.0, headline_speedup(config=config, batch=batch))]
    for field_name in CALIBRATED_FIELDS:
        for factor in factors:
            calibration = perturbed_calibration(field_name, factor)
            rows.append((
                field_name, factor,
                headline_speedup(calibration, config, batch),
            ))
    return rows


def conclusions_hold(rows, minimum_speedup: float = 30.0) -> bool:
    """True when every perturbed configuration keeps LazyDP's win large.

    ``minimum_speedup`` is deliberately far below the paper's 119x: the
    claim being guarded is "orders of magnitude", not the exact figure.
    """
    return all(speedup >= minimum_speedup for _, _, speedup in rows)
