"""Private serving: query-time read-through catch-up of deferred noise.

:class:`PrivateServingEngine` wraps a live (or checkpointed) LazyDP
model and serves *privatized* embeddings without the stop-the-world
flush of :func:`repro.lazydp.export_private_model`: the first lookup
of a row applies that row's pending deferred noise (the identical
keyed draw the flush would make), memoizes it, and every release —
single row, mini-batch, or the full :meth:`PrivateServingEngine.
export` — is incremental from there.

The high-throughput tier around the engine:

* :class:`~repro.serve.locks.RWLock` — the shared/exclusive lock that
  lets any number of lookup threads run concurrently against a live
  attached trainer (writers: refresh, export, quiesce).
* :class:`HotRowCache` — skew-aware frequency-admitted cache of hot
  privatized rows; point lookups that hit it bypass even the read
  lock (generation-validated, bitwise-equal to the memo).
* :class:`MultiTenantServer` — several ``(model, epsilon)`` serving
  snapshots sharing the base table slabs zero-copy.
* :func:`run_load` / :func:`generate_traffic` — the closed-loop
  fig13d-skewed load generator behind ``bench_serve_load`` and the
  stress suite.
"""

from .cache import HotRowCache
from .engine import PrivateServingEngine
from .loadgen import LoadReport, generate_traffic, run_load
from .locks import RWLock
from .tenant import MultiTenantServer

__all__ = [
    "HotRowCache",
    "LoadReport",
    "MultiTenantServer",
    "PrivateServingEngine",
    "RWLock",
    "generate_traffic",
    "run_load",
]
