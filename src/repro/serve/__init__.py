"""Private serving: query-time read-through catch-up of deferred noise.

:class:`PrivateServingEngine` wraps a live (or checkpointed) LazyDP
model and serves *privatized* embeddings without the stop-the-world
flush of :func:`repro.lazydp.export_private_model`: the first lookup
of a row applies that row's pending deferred noise (the identical
keyed draw the flush would make), memoizes it, and every release —
single row, mini-batch, or the full :meth:`PrivateServingEngine.
export` — is incremental from there.
"""

from .engine import PrivateServingEngine

__all__ = ["PrivateServingEngine"]
