"""The private serving engine: query-time read-through noise catch-up.

Between iterations a LazyDP model is *behind* on noise by design, so
serving an embedding straight out of the live table would leak which
rows were recently accessed (paper Section 3's threat model).  The
existing release path — :func:`repro.lazydp.export_private_model` —
fixes that with a stop-the-world flush: every pending row of every
table is caught up before anything is served.

:class:`PrivateServingEngine` makes the release *incremental* by
exploiting the same deferred-noise ledger one more time: a lookup of
row ``r`` first applies ``r``'s pending deferred noise (the exact
catch-up draw the flush would have made — noise bits are keyed by
``(seed, table, row, iteration)``, so when they are drawn cannot
change them), memoizes the privatized embedding, and serves it.  Rows
nobody queries are never caught up; rows queried twice are caught up
once.  :meth:`export` finishes the job for whatever was not queried
and returns, row for row, the same arrays ``export_private_model``
would have produced — the equivalence ``tests/test_serve.py`` pins.

The engine snapshots the HistoryTables (cheap: 4 bytes/row) at
construction, so the *decision* which noise is pending is frozen at
``iteration`` even if the snapshot outlives the training run.  Table
parameters are referenced in place by default (zero-copy — correct for
a finished or paused trainer and for checkpoints); pass
``snapshot=True`` to copy them when training resumes concurrently.

A frozen snapshot is the right behaviour for checkpoints, but serving a
*live* trainer used to go silently stale: once training resumed, the
memo kept answering from the old iteration.  :meth:`attach` fixes that
— an attached engine watches the trainer's ``last_iteration`` marker
and, at the first operation after training resumed, re-snapshots the
histories, re-copies the dense parameters and invalidates the
read-through memo, so served rows again agree row-for-row with
``export_private_model`` at the trainer's current iteration.  The
trainer must be quiescent (between fits / manual steps) whenever
serving calls run; :meth:`detach` freezes the engine at its current
state.  ``TrainSession.serve`` (:mod:`repro.session`) hands out
attached engines and detaches them on session close.

Lookups are thread-safe (a single lock guards the memo), sized for the
serving pattern of many small reads.
"""

from __future__ import annotations

import threading

import numpy as np

from ..kernels import BufferArena, apply_sparse_update
from ..lazydp.ans import ANSEngine
from ..obs import NULL_OBS


class PrivateServingEngine:
    """Serve privatized embeddings with read-through noise catch-up."""

    def __init__(
        self,
        parameters: dict,
        embedding_names: list,
        history_snapshots: list,
        noise_stream,
        iteration: int,
        learning_rate: float,
        noise_std: float,
        use_ans: bool = True,
        snapshot: bool = False,
    ):
        """Wrap raw model state for serving.

        Parameters
        ----------
        parameters:
            ``name -> array`` of every model parameter (live references
            or copies; see ``snapshot``).
        embedding_names:
            Parameter names of the embedding tables, in table-index
            order (the order noise keying uses).
        history_snapshots:
            One int32 last-noise-updated array per table, as returned
            by ``HistoryTable.snapshot()``; copied internally.
        iteration:
            The iteration the served model stands at; pending noise is
            everything between a row's history entry and here.
        """
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if len(embedding_names) != len(history_snapshots):
            raise ValueError(
                "need exactly one history snapshot per embedding table"
            )
        self.iteration = int(iteration)
        self.learning_rate = float(learning_rate)
        self.noise_std = float(noise_std)
        self.ans = ANSEngine(noise_stream, enabled=use_ans)
        self.embedding_names = list(embedding_names)
        self._dense = {
            name: np.array(data, copy=True)
            for name, data in parameters.items()
            if name not in self.embedding_names
        }
        self._tables = []
        for name, snap in zip(self.embedding_names, history_snapshots):
            data = parameters[name]
            if snapshot:
                data = np.array(data, copy=True)
            snap = np.asarray(snap, dtype=np.int64)
            if snap.shape[0] != data.shape[0]:
                raise ValueError(
                    f"history snapshot for {name} covers {snap.shape[0]} "
                    f"rows, table has {data.shape[0]}"
                )
            if np.any(snap > self.iteration):
                raise ValueError(
                    f"history for {name} is ahead of iteration "
                    f"{self.iteration}; cannot serve the past"
                )
            self._tables.append(data)
            # Per-table memo: privatized rows materialised so far.
            # ``_caught_up`` marks them; ``_served`` holds the values.
        self._history = [
            np.asarray(snap, dtype=np.int64).copy()
            for snap in history_snapshots
        ]
        # The served memo is allocated per table on first touch, so an
        # engine wrapped around a many-table model and queried on a few
        # tables never pays a dense copy for the rest.
        self._served: list = [None] * len(self._tables)
        self._caught_up = [
            np.zeros(table.shape[0], dtype=bool) for table in self._tables
        ]
        self._lock = threading.Lock()
        #: Catch-up scratch, guarded by the same lock as the memo.
        self._arena = BufferArena()
        #: Whether tables were copied (refreshes must re-copy them too).
        self._snapshot = bool(snapshot)
        #: Trainer this engine follows (see :meth:`attach`); None =
        #: frozen at construction, the default.
        self._attached = None
        #: Rows privatized so far (catch-up draws actually performed).
        self.rows_caught_up = 0
        #: Rows returned across all lookups (includes memo hits).
        self.rows_served = 0
        #: Lookup rows answered straight from the memo.
        self.memo_hits = 0
        #: Times the memo was invalidated because training resumed.
        self.refreshes = 0
        #: Observability hub (``repro.obs``); the shared null object
        #: until :meth:`instrument` swaps a live one in.
        self.obs = NULL_OBS

    def instrument(self, obs) -> None:
        """Mirror the serving counters into an Observability hub.

        ``TrainSession.serve`` calls this with the session's hub so
        serving shows up beside the training metrics; the counters on
        ``self`` keep working either way.
        """
        self.obs = obs if obs is not None else NULL_OBS

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_trainer(
        cls,
        trainer,
        iteration: int | None = None,
        noise_std: float | None = None,
        snapshot: bool = False,
    ) -> "PrivateServingEngine":
        """Serve a (quiescent) trainer's model at ``iteration``.

        ``iteration`` defaults to the trainer's flushed-through point if
        it finalized, otherwise it must be given (a mid-training serve).
        ``noise_std`` follows :func:`export_private_model`'s convention:
        the last observed per-iteration std unless overridden.
        """
        if iteration is None:
            iteration = trainer.engine.flushed_through
            if iteration is None:
                raise ValueError(
                    "iteration unknown: trainer has not finalized; "
                    "pass the iteration to serve at"
                )
        if noise_std is None:
            noise_std = trainer._last_noise_std
        if noise_std is None:
            raise ValueError(
                "noise_std unknown: train at least one step or pass it in"
            )
        parameters = {
            name: param.data
            for name, param in trainer.model.parameters().items()
        }
        return cls(
            parameters,
            trainer.model.embedding_param_names,
            [history.snapshot() for history in trainer.engine.histories],
            trainer.noise_stream,
            iteration,
            trainer.config.learning_rate,
            noise_std,
            use_ans=trainer.use_ans,
            snapshot=snapshot,
        )

    @classmethod
    def from_checkpoint(cls, path, config, noise_std: float,
                        dp=None) -> "PrivateServingEngine":
        """Serve an exported training checkpoint without resuming it.

        Rebuilds the geometry from ``config``, loads the checkpoint's
        parameters, histories, seed and ANS mode, and wraps them —
        the checkpoint file stays a *training* artifact (its tables
        are lazy); only the served embeddings are privatized.
        """
        from ..lazydp.checkpoint import load_checkpoint
        from ..lazydp.trainer import LazyDPTrainer
        from ..nn.dlrm import DLRM
        from ..train.common import DPConfig

        with np.load(path) as archive:
            noise_seed = int(archive["meta/noise_seed"][0])
            use_ans = bool(archive["meta/use_ans"][0])
        model = DLRM(config, seed=0)
        trainer = LazyDPTrainer(
            model, dp or DPConfig(), noise_seed=noise_seed, use_ans=use_ans
        )
        iteration = load_checkpoint(path, trainer)
        return cls.from_trainer(
            trainer, iteration=iteration, noise_std=noise_std
        )

    # -- live-trainer attachment -------------------------------------------
    def attach(self, trainer) -> None:
        """Follow ``trainer``: refresh the memo when it resumes stepping.

        The trainer must be the one this engine was built from (same
        embedding tables); serving calls must not race its train steps
        — quiesce, serve, resume.
        """
        names = getattr(trainer.model, "embedding_param_names", None)
        if names != self.embedding_names:
            raise ValueError(
                "cannot attach: trainer's embedding tables do not match "
                "the engine's"
            )
        with self._lock:
            self._attached = trainer
            self._maybe_refresh()

    def detach(self) -> None:
        """Stop following the trainer; freeze at the current snapshot."""
        with self._lock:
            self._attached = None

    def _maybe_refresh(self) -> None:
        """Re-snapshot from the attached trainer if it stepped past the
        iteration this engine serves at (caller holds the lock)."""
        trainer = self._attached
        if trainer is None:
            return
        current = int(trainer.current_iteration())
        if current <= self.iteration:
            return
        noise_std = trainer._last_noise_std
        if noise_std is None:       # pragma: no cover - attach required a step
            raise ValueError(
                "cannot refresh: attached trainer has no observed noise std"
            )
        parameters = {
            name: param.data
            for name, param in trainer.model.parameters().items()
        }
        self.iteration = current
        self.noise_std = float(noise_std)
        self._dense = {
            name: np.array(data, copy=True)
            for name, data in parameters.items()
            if name not in self.embedding_names
        }
        self._tables = [
            (
                np.array(parameters[name], copy=True)
                if self._snapshot
                else parameters[name]
            )
            for name in self.embedding_names
        ]
        self._history = [
            np.asarray(history.snapshot(), dtype=np.int64).copy()
            for history in trainer.engine.histories
        ]
        # The memo answered for an older iteration; invalidate it so
        # every row is caught up against the new history snapshot.
        self._served = [None] * len(self._tables)
        self._caught_up = [
            np.zeros(table.shape[0], dtype=bool) for table in self._tables
        ]
        self.refreshes += 1
        obs = self.obs
        if obs.enabled:
            if obs.metrics_enabled:
                obs.metrics.inc("serve.memo_invalidations")
            tracer = obs.tracer
            if tracer.enabled:
                tracer.add_instant("serve_refresh", iteration=current)

    # -- serving -----------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self._tables)

    def pending_rows(self, table_index: int) -> np.ndarray:
        """Rows of one table still owed noise (not yet served/caught up)."""
        with self._lock:
            self._maybe_refresh()
            behind = self._history[table_index] < self.iteration
            return np.nonzero(behind & ~self._caught_up[table_index])[0]

    def _served_table(self, table_index: int) -> np.ndarray:
        """The dense served memo for one table (allocated on first use)."""
        if self._served[table_index] is None:
            self._served[table_index] = np.zeros_like(
                self._tables[table_index]
            )
        return self._served[table_index]

    def _catch_up(self, table_index: int, rows: np.ndarray) -> None:
        """Privatize ``rows`` (unique, not yet caught up) into the memo."""
        table = self._tables[table_index]
        served = self._served_table(table_index)
        delays = self.iteration - self._history[table_index][rows]
        pending = rows[delays > 0]
        current = rows[delays == 0]
        if current.size:
            # No pending noise: served bits are the stored bits (the
            # flush would not have touched these rows either).
            served[current] = table[current]
        if pending.size:
            noise = self.ans.catchup_noise(
                table_index, pending, delays[delays > 0], self.iteration,
                table.shape[1], self.noise_std,
            )
            # Fused read-through write: gather the stored rows, subtract
            # the scaled catch-up draw, land in the memo — same bits as
            # ``served[pending] = table[pending] - lr * noise``.
            apply_sparse_update(
                table, pending, noise, self.learning_rate,
                arena=self._arena, out=served, values_writable=True,
            )
            self.rows_caught_up += int(pending.size)
            obs = self.obs
            if obs.enabled and obs.metrics_enabled:
                obs.metrics.inc("serve.rows_caught_up", int(pending.size))
        self._caught_up[table_index][rows] = True

    def lookup(self, table_index: int, rows) -> np.ndarray:
        """Privatized embeddings for ``rows`` of one table.

        Read-through: rows seen for the first time get their pending
        deferred noise applied (and memoized); every later lookup is a
        memo read.  Duplicate and unsorted row ids are fine.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("rows must be a 1-D array of row indices")
        table = self._tables[table_index]
        if rows.size and (rows.min() < 0 or rows.max() >= table.shape[0]):
            raise IndexError(
                f"row ids out of range for table {table_index} "
                f"({table.shape[0]} rows)"
            )
        with self._lock:
            self._maybe_refresh()
            unique = np.unique(rows)
            fresh = unique[~self._caught_up[table_index][unique]]
            if fresh.size:
                self._catch_up(table_index, fresh)
            self.rows_served += int(rows.size)
            self.memo_hits += int(rows.size - fresh.size)
            obs = self.obs
            if obs.enabled and obs.metrics_enabled:
                obs.metrics.inc("serve.rows_served", int(rows.size))
                obs.metrics.inc(
                    "serve.memo_hits", int(rows.size - fresh.size)
                )
            return self._served_table(table_index)[rows].copy()

    def lookup_batch(self, batch) -> list:
        """Privatized embeddings for every table of one mini-batch
        (``batch.accessed_rows`` order), e.g. for private inference."""
        return [
            self.lookup(t, batch.accessed_rows(t))
            for t in range(self.num_tables)
        ]

    def export(self) -> dict:
        """Finish the catch-up for all remaining rows and release.

        Returns the same ``name -> array`` mapping (same bits) as
        :func:`repro.lazydp.export_private_model` at this iteration —
        assembled incrementally: rows already served are taken from the
        memo, everything else is caught up now.
        """
        with self._lock:
            self._maybe_refresh()
            released = {
                name: data.copy() for name, data in self._dense.items()
            }
        for table_index, name in enumerate(self.embedding_names):
            with self._lock:
                remaining = np.nonzero(~self._caught_up[table_index])[0]
                if remaining.size:
                    # Rows with no pending noise are a plain copy; the
                    # memo write is still the cheapest uniform path.
                    self._catch_up(table_index, remaining)
                released[name] = self._served_table(table_index).copy()
        return released

    def stats(self) -> dict:
        """Serving counters (memo effectiveness, catch-up progress)."""
        with self._lock:
            self._maybe_refresh()
            total_pending = sum(
                int(np.count_nonzero(
                    (self._history[t] < self.iteration)
                    & ~self._caught_up[t]
                ))
                for t in range(self.num_tables)
            )
        return {
            "iteration": self.iteration,
            "rows_served": self.rows_served,
            "rows_caught_up": self.rows_caught_up,
            "memo_hits": self.memo_hits,
            "rows_still_pending": total_pending,
            "attached": self._attached is not None,
            "refreshes": self.refreshes,
        }
