"""The private serving engine: query-time read-through noise catch-up.

Between iterations a LazyDP model is *behind* on noise by design, so
serving an embedding straight out of the live table would leak which
rows were recently accessed (paper Section 3's threat model).  The
existing release path — :func:`repro.lazydp.export_private_model` —
fixes that with a stop-the-world flush: every pending row of every
table is caught up before anything is served.

:class:`PrivateServingEngine` makes the release *incremental* by
exploiting the same deferred-noise ledger one more time: a lookup of
row ``r`` first applies ``r``'s pending deferred noise (the exact
catch-up draw the flush would have made — noise bits are keyed by
``(seed, table, row, iteration)``, so when they are drawn cannot
change them), memoizes the privatized embedding, and serves it.  Rows
nobody queries are never caught up; rows queried twice are caught up
once.  :meth:`export` finishes the job for whatever was not queried
and returns, row for row, the same arrays ``export_private_model``
would have produced — the equivalence ``tests/test_serve.py`` pins.

The engine snapshots the HistoryTables (cheap: 4 bytes/row) at
construction, so the *decision* which noise is pending is frozen at
``iteration`` even if the snapshot outlives the training run.  Table
parameters are referenced in place by default (zero-copy — correct for
a finished or paused trainer and for checkpoints); pass
``snapshot=True`` to copy them when training resumes concurrently.

A frozen snapshot is the right behaviour for checkpoints, but serving a
*live* trainer used to go silently stale: once training resumed, the
memo kept answering from the old iteration.  :meth:`attach` fixes that
— an attached engine watches the trainer's ``last_iteration`` marker
and, at the first operation after training resumed, re-snapshots the
histories, re-copies the dense parameters and invalidates the
read-through memo, so served rows again agree row-for-row with
``export_private_model`` at the trainer's current iteration.
:meth:`detach` freezes the engine at its current state.
``TrainSession.serve`` (:mod:`repro.session`) hands out attached
engines and detaches them on session close.

Concurrency (the serving lock hierarchy, outermost first):

1. An :class:`~repro.serve.locks.RWLock` guards the snapshot
   wholesale.  Lookups are *readers* — any number run concurrently.
   Refresh, the consistent :meth:`export`, :meth:`attach` /
   :meth:`detach`, and the :meth:`quiesce` window a live trainer
   steps inside are *writers* — exclusive, writer-preferred so a
   stream of lookups cannot starve freshness.
2. Inside a read section, one ``threading.Lock`` per table stripes
   catch-up writes: first-touch rows of different tables privatize in
   parallel, and memo *hits* never take a stripe at all — once a
   row's ``_caught_up`` flag is set its memo entry is immutable until
   the next refresh (which excludes all readers), so the hit path is
   a lock-free gather under the shared read lock.
3. A small stats lock makes the serving counters (and their
   ``repro.obs`` mirrors) exact under concurrent readers.

Each table owns a private :class:`BufferArena` and
:class:`ANSEngine`, so concurrent catch-ups never share scratch.

An optional :class:`~repro.serve.cache.HotRowCache` fronts the whole
scheme for point lookups: probes validate against the engine's
*generation* (bumped on every refresh) with a seqlock-style re-check,
so a cache hit bypasses even the read lock yet can never serve a row
from a superseded snapshot.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from ..kernels import BufferArena, apply_sparse_update
from ..lazydp.ans import ANSEngine
from ..lazydp.ledger import VersionVector
from ..obs import NULL_OBS
from .locks import RWLock


class PrivateServingEngine:
    """Serve privatized embeddings with read-through noise catch-up."""

    def __init__(
        self,
        parameters: dict,
        embedding_names: list,
        history_snapshots: list,
        noise_stream,
        iteration: int,
        learning_rate: float,
        noise_std: float,
        use_ans: bool = True,
        snapshot: bool = False,
        cache=None,
    ):
        """Wrap raw model state for serving.

        Parameters
        ----------
        parameters:
            ``name -> array`` of every model parameter (live references
            or copies; see ``snapshot``).
        embedding_names:
            Parameter names of the embedding tables, in table-index
            order (the order noise keying uses).
        history_snapshots:
            One int32 last-noise-updated array per table, as returned
            by ``HistoryTable.snapshot()``; copied internally.
        iteration:
            The iteration the served model stands at; pending noise is
            everything between a row's history entry and here.
        cache:
            Optional :class:`~repro.serve.cache.HotRowCache` fronting
            point lookups (see :meth:`enable_cache`).
        """
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if len(embedding_names) != len(history_snapshots):
            raise ValueError(
                "need exactly one history snapshot per embedding table"
            )
        self.learning_rate = float(learning_rate)
        self.noise_std = float(noise_std)
        self.ans = ANSEngine(noise_stream, enabled=use_ans)
        self.embedding_names = list(embedding_names)
        self._dense = {
            name: np.array(data, copy=True)
            for name, data in parameters.items()
            if name not in self.embedding_names
        }
        iteration = int(iteration)
        self._tables = []
        for name, snap in zip(self.embedding_names, history_snapshots):
            data = parameters[name]
            if snapshot:
                data = np.array(data, copy=True)
            snap = np.asarray(snap, dtype=np.int64)
            if snap.shape[0] != data.shape[0]:
                raise ValueError(
                    f"history snapshot for {name} covers {snap.shape[0]} "
                    f"rows, table has {data.shape[0]}"
                )
            if np.any(snap > iteration):
                raise ValueError(
                    f"history for {name} is ahead of iteration "
                    f"{iteration}; cannot serve the past"
                )
            self._tables.append(data)
        self._history = [
            np.asarray(snap, dtype=np.int64).copy()
            for snap in history_snapshots
        ]
        #: Snapshot version: ``(generation, iteration)``, replaced as
        #: one atomic tuple assignment at the end of every refresh.
        #: The generation tags hot-row cache entries; the tuple-at-once
        #: update is what makes the lock-free cache probe sound (it
        #: can never observe a new iteration with an old generation).
        self._version = (0, iteration)
        # -- lock hierarchy (see module docstring) --
        self._rw = RWLock()
        self._table_locks = [
            threading.Lock() for _ in self._tables
        ]
        self._stats_lock = threading.Lock()
        #: Per-table catch-up machinery: concurrent first-touch
        #: privatization of different tables must not share scratch
        #: (BufferArena and the ANS draw counter are single-threaded
        #: state), so every table stripe owns its own.
        self._arenas = [BufferArena() for _ in self._tables]
        self._table_ans = [
            ANSEngine(noise_stream, enabled=use_ans, arena=arena)
            for arena in self._arenas
        ]
        self._reset_memo()
        #: Whether tables were copied (refreshes must re-copy them too).
        self._snapshot = bool(snapshot)
        #: Trainer this engine follows (see :meth:`attach`); None =
        #: frozen at construction, the default.
        self._attached = None
        #: Optional hot-row cache fronting point lookups.
        self._cache = None
        if cache is not None:
            self.enable_cache(cache)
        #: Rows privatized so far (catch-up draws actually performed).
        self.rows_caught_up = 0
        #: Rows returned across all lookups (includes memo hits).
        self.rows_served = 0
        #: Lookup rows answered straight from the memo (or its cache).
        self.memo_hits = 0
        #: Times the memo was invalidated because training resumed.
        self.refreshes = 0
        #: Observability hub (``repro.obs``); the shared null object
        #: until :meth:`instrument` swaps a live one in.
        self.obs = NULL_OBS

    def _reset_memo(self) -> None:
        """Fresh memo + exactly-once ledger for the current snapshot."""
        # The served memo is allocated per table on first touch, so an
        # engine wrapped around a many-table model and queried on a few
        # tables never pays a dense copy for the rest.
        self._served: list = [None] * len(self._tables)
        self._caught_up = [
            np.zeros(table.shape[0], dtype=bool) for table in self._tables
        ]
        #: Per-table exactly-once audit: every catch-up advances the
        #: row from its history snapshot to the serving iteration; the
        #: VersionVector rejects any overlap or gap, so a concurrency
        #: bug that double-applied or skipped serving noise raises at
        #: the racing lookup instead of silently corrupting the
        #: released bits (``audit_exactly_once`` proves the end state).
        self._ledger = [
            VersionVector(history.shape[0], initial=history)
            for history in self._history
        ]

    @property
    def iteration(self) -> int:
        """The iteration the served snapshot stands at."""
        return self._version[1]

    @property
    def generation(self) -> int:
        """Bumped on every refresh; tags hot-row cache entries."""
        return self._version[0]

    def instrument(self, obs) -> None:
        """Mirror the serving counters into an Observability hub.

        ``TrainSession.serve`` calls this with the session's hub so
        serving shows up beside the training metrics; the counters on
        ``self`` keep working either way.
        """
        self.obs = obs if obs is not None else NULL_OBS

    def enable_cache(self, cache) -> None:
        """Front point lookups with a hot-row cache.

        The cache serves only rows this engine memoized for the
        current generation, so cached answers are bitwise identical to
        uncached ones; see :mod:`repro.serve.cache`.
        """
        self._cache = cache

    @property
    def cache(self):
        return self._cache

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_trainer(
        cls,
        trainer,
        iteration: int | None = None,
        noise_std: float | None = None,
        snapshot: bool = False,
        cache=None,
    ) -> "PrivateServingEngine":
        """Serve a (quiescent) trainer's model at ``iteration``.

        ``iteration`` defaults to the trainer's flushed-through point if
        it finalized, otherwise it must be given (a mid-training serve).
        ``noise_std`` follows :func:`export_private_model`'s convention:
        the last observed per-iteration std unless overridden.
        """
        if iteration is None:
            iteration = trainer.engine.flushed_through
            if iteration is None:
                raise ValueError(
                    "iteration unknown: trainer has not finalized; "
                    "pass the iteration to serve at"
                )
        if noise_std is None:
            noise_std = trainer._last_noise_std
        if noise_std is None:
            raise ValueError(
                "noise_std unknown: train at least one step or pass it in"
            )
        parameters = {
            name: param.data
            for name, param in trainer.model.parameters().items()
        }
        return cls(
            parameters,
            trainer.model.embedding_param_names,
            [history.snapshot() for history in trainer.engine.histories],
            trainer.noise_stream,
            iteration,
            trainer.config.learning_rate,
            noise_std,
            use_ans=trainer.use_ans,
            snapshot=snapshot,
            cache=cache,
        )

    @classmethod
    def from_checkpoint(cls, path, config, noise_std: float,
                        dp=None) -> "PrivateServingEngine":
        """Serve an exported training checkpoint without resuming it.

        Rebuilds the geometry from ``config``, loads the checkpoint's
        parameters, histories, seed and ANS mode, and wraps them —
        the checkpoint file stays a *training* artifact (its tables
        are lazy); only the served embeddings are privatized.
        """
        from ..lazydp.checkpoint import load_checkpoint
        from ..lazydp.trainer import LazyDPTrainer
        from ..nn.dlrm import DLRM
        from ..train.common import DPConfig

        with np.load(path) as archive:
            noise_seed = int(archive["meta/noise_seed"][0])
            use_ans = bool(archive["meta/use_ans"][0])
        model = DLRM(config, seed=0)
        trainer = LazyDPTrainer(
            model, dp or DPConfig(), noise_seed=noise_seed, use_ans=use_ans
        )
        iteration = load_checkpoint(path, trainer)
        return cls.from_trainer(
            trainer, iteration=iteration, noise_std=noise_std
        )

    # -- live-trainer attachment -------------------------------------------
    def attach(self, trainer) -> None:
        """Follow ``trainer``: refresh the memo when it resumes stepping.

        The trainer must be the one this engine was built from (same
        embedding tables).  Train steps must run inside a
        :meth:`quiesce` window (or otherwise exclude serving calls);
        lookups from any number of threads are safe at all times.
        """
        names = getattr(trainer.model, "embedding_param_names", None)
        if names != self.embedding_names:
            raise ValueError(
                "cannot attach: trainer's embedding tables do not match "
                "the engine's"
            )
        with self._rw.write():
            self._attached = trainer
            self._maybe_refresh()

    def detach(self) -> None:
        """Stop following the trainer; freeze at the current snapshot."""
        with self._rw.write():
            self._attached = None

    @contextmanager
    def quiesce(self):
        """Exclusive window for mutating the served model in place.

        A live attached trainer steps inside this context::

            with engine.quiesce():
                trainer.train_step(iteration, batch, next_batch)

        The write lock drains every in-flight lookup and holds new
        ones at the door, so readers never observe a half-applied
        training step; the first lookup afterwards sees the bumped
        ``last_iteration`` and refreshes.
        """
        with self._rw.write():
            yield self

    def _needs_refresh(self) -> bool:
        """Whether the attached trainer stepped past our snapshot.

        Safe to call without any lock: it reads two plain ints, and a
        stale answer only delays the refresh to the next lookup."""
        trainer = self._attached
        return (
            trainer is not None
            and int(trainer.current_iteration()) > self.iteration
        )

    def _maybe_refresh(self) -> None:
        """Re-snapshot from the attached trainer if it stepped past the
        iteration this engine serves at (caller holds the write lock)."""
        trainer = self._attached
        if trainer is None:
            return
        current = int(trainer.current_iteration())
        if current <= self.iteration:
            return
        noise_std = trainer._last_noise_std
        if noise_std is None:       # pragma: no cover - attach required a step
            raise ValueError(
                "cannot refresh: attached trainer has no observed noise std"
            )
        parameters = {
            name: param.data
            for name, param in trainer.model.parameters().items()
        }
        self.noise_std = float(noise_std)
        self._dense = {
            name: np.array(data, copy=True)
            for name, data in parameters.items()
            if name not in self.embedding_names
        }
        self._tables = [
            (
                np.array(parameters[name], copy=True)
                if self._snapshot
                else parameters[name]
            )
            for name in self.embedding_names
        ]
        self._history = [
            np.asarray(history.snapshot(), dtype=np.int64).copy()
            for history in trainer.engine.histories
        ]
        # The memo answered for an older iteration; invalidate it so
        # every row is caught up against the new history snapshot.
        self._reset_memo()
        cache = self._cache
        dropped = cache.invalidate() if cache is not None else 0
        # Publish the new (generation, iteration) last, as one tuple:
        # a lock-free cache probe that still sees the old generation
        # also still sees the old iteration, never a mix.
        self._version = (self._version[0] + 1, current)
        self.refreshes += 1
        obs = self.obs
        if obs.enabled:
            if obs.metrics_enabled:
                obs.metrics.inc("serve.memo_invalidations")
                if cache is not None:
                    obs.metrics.inc("serve.cache.invalidations")
                    obs.metrics.inc("serve.cache.dropped_rows", dropped)
            tracer = obs.tracer
            if tracer.enabled:
                tracer.add_instant("serve_refresh", iteration=current)

    @contextmanager
    def _read_section(self):
        """A shared section over a *fresh* snapshot.

        Acquires the read lock; if the attached trainer has stepped
        past the snapshot, upgrades to the write lock for the refresh
        and re-enters.  The loop settles because only a trainer step
        (excluded by writers holding :meth:`quiesce`) can make the
        snapshot stale again.
        """
        while True:
            self._rw.acquire_read()
            if not self._needs_refresh():
                break
            self._rw.release_read()
            with self._rw.write():
                self._maybe_refresh()
        try:
            yield
        finally:
            self._rw.release_read()

    # -- serving -----------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self._tables)

    def table_rows(self, table_index: int) -> int:
        """Row count of one served table (load generators, sizing)."""
        return int(self._tables[table_index].shape[0])

    def pending_rows(self, table_index: int) -> np.ndarray:
        """Rows of one table still owed noise (not yet served/caught up)."""
        with self._read_section():
            behind = self._history[table_index] < self.iteration
            return np.nonzero(behind & ~self._caught_up[table_index])[0]

    def _served_table(self, table_index: int) -> np.ndarray:
        """The dense served memo for one table (allocated on first use;
        caller holds the table's stripe lock or the write lock)."""
        if self._served[table_index] is None:
            self._served[table_index] = np.zeros_like(
                self._tables[table_index]
            )
        return self._served[table_index]

    def _catch_up(self, table_index: int, rows: np.ndarray) -> None:
        """Privatize ``rows`` (unique, not yet caught up) into the memo.

        Caller holds either this table's stripe lock (inside a read
        section) or the write lock (:meth:`export`); the memo rows are
        written first and the ``_caught_up`` flags last, so a
        flag-then-gather reader can never see a half-written row.
        """
        table = self._tables[table_index]
        served = self._served_table(table_index)
        all_delays = self.iteration - self._history[table_index][rows]
        pending = rows[all_delays > 0]
        current = rows[all_delays == 0]
        if current.size:
            # No pending noise: served bits are the stored bits (the
            # flush would not have touched these rows either).
            served[current] = table[current]
        if pending.size:
            noise = self._table_ans[table_index].catchup_noise(
                table_index, pending, all_delays[all_delays > 0],
                self.iteration, table.shape[1], self.noise_std,
            )
            # Fused read-through write: gather the stored rows, subtract
            # the scaled catch-up draw, land in the memo — same bits as
            # ``served[pending] = table[pending] - lr * noise``.
            apply_sparse_update(
                table, pending, noise, self.learning_rate,
                arena=self._arenas[table_index], out=served,
                values_writable=True,
            )
        # Exactly-once proof: every row advances from its history
        # snapshot to the serving iteration, spans contiguous.
        self._ledger[table_index].advance(rows, all_delays, self.iteration)
        self._caught_up[table_index][rows] = True
        if pending.size:
            obs = self.obs
            with self._stats_lock:
                self.rows_caught_up += int(pending.size)
                if obs.enabled and obs.metrics_enabled:
                    obs.metrics.inc(
                        "serve.rows_caught_up", int(pending.size)
                    )

    def _validate_rows(self, table_index: int, rows) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("rows must be a 1-D array of row indices")
        num_rows = self._tables[table_index].shape[0]
        if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
            raise IndexError(
                f"row ids out of range for table {table_index} "
                f"({num_rows} rows)"
            )
        return rows

    def _count_served(self, served: int, hits: int) -> None:
        obs = self.obs
        with self._stats_lock:
            self.rows_served += served
            self.memo_hits += hits
            if obs.enabled and obs.metrics_enabled:
                obs.metrics.inc("serve.rows_served", served)
                obs.metrics.inc("serve.memo_hits", hits)

    def _cache_fast_path(self, table_index: int, rows: np.ndarray):
        """Lock-free point-lookup path through the hot-row cache.

        Seqlock-style validation: read the (generation, iteration)
        version, probe entries tagged with that generation, then
        re-check the version.  A concurrent refresh publishes a new
        version tuple as its final step, so surviving the re-check
        proves every returned row belongs to the iteration reported.
        """
        cache = self._cache
        if cache is None or rows.size == 0:
            return None
        if self._needs_refresh():
            return None  # snapshot is stale; take the refresh path
        generation, iteration = self._version
        values = cache.get_rows(table_index, rows, generation)
        if values is None:
            return None
        if self._version[0] != generation or self._needs_refresh():
            return None  # raced a refresh; serve from the slow path
        n = int(rows.size)
        self._count_served(n, n)
        obs = self.obs
        if obs.enabled and obs.metrics_enabled:
            with self._stats_lock:
                obs.metrics.inc("serve.cache.hits", n)
        return values, iteration

    def _lookup_in_read(self, table_index: int, rows: np.ndarray):
        """One table's read-through lookup; caller holds a read section.

        Returns ``(values, fresh_rows, fresh_values)`` where the fresh
        arrays cover the unique rows this call privatized (the hot-row
        cache's admission feed; both are None when nothing was fresh).
        """
        if rows.size == 0:
            dim = self._tables[table_index].shape[1]
            return np.zeros((0, dim), dtype=np.float64), None, None
        caught = self._caught_up[table_index]
        unique = np.unique(rows)
        fresh_count = 0
        if not caught[unique].all():
            with self._table_locks[table_index]:
                # Re-check under the stripe: another reader may have
                # privatized some of these rows while we waited.
                fresh = unique[~caught[unique]]
                if fresh.size:
                    self._catch_up(table_index, fresh)
                    fresh_count = int(fresh.size)
        # Every requested row is now caught up, and caught-up memo rows
        # are immutable until the next refresh (a writer), so this
        # gather needs no stripe lock even while other readers privatize
        # disjoint rows of the same table.
        served = self._served[table_index]
        values = served[rows].copy()
        self._count_served(int(rows.size), int(rows.size) - fresh_count)
        cache = self._cache
        if cache is not None:
            # Feed every uniquely served row to the admission filter.
            return values, unique, served[unique]
        return values, None, None

    def _offer_to_cache(self, table_index, unique, unique_values,
                        generation) -> None:
        """Admission feed after a slow-path serve (no engine locks held).

        ``generation`` was read inside the read section, so the values
        belong to it; entries tagged with a superseded generation are
        unreturnable, making a racing late offer harmless.
        """
        cache = self._cache
        if cache is None or unique is None:
            return
        admitted = cache.offer(
            table_index, unique, unique_values, generation
        )
        obs = self.obs
        if obs.enabled and obs.metrics_enabled:
            with self._stats_lock:
                obs.metrics.inc("serve.cache.misses", int(unique.size))
                if admitted:
                    obs.metrics.inc("serve.cache.admissions", admitted)
                obs.metrics.set_gauge(
                    "serve.cache.resident_rows", len(cache)
                )

    def lookup(self, table_index: int, rows) -> np.ndarray:
        """Privatized embeddings for ``rows`` of one table.

        Read-through: rows seen for the first time get their pending
        deferred noise applied (and memoized); every later lookup is a
        memo read.  Duplicate and unsorted row ids are fine.
        """
        values, _ = self.lookup_versioned(table_index, rows)
        return values

    def lookup_versioned(self, table_index: int, rows) -> tuple:
        """:meth:`lookup` plus the iteration the rows were served at.

        The pair is atomic: the returned values equal
        ``export_private_model``'s bits for exactly the returned
        iteration, however many refreshes race the call — the
        consistency contract the stress suite hammers.
        """
        rows = self._validate_rows(table_index, rows)
        cached = self._cache_fast_path(table_index, rows)
        if cached is not None:
            return cached
        with self._read_section():
            values, unique, unique_values = self._lookup_in_read(
                table_index, rows
            )
            generation, iteration = self._version
            if unique_values is not None:
                # Copy before leaving the section: after release a
                # refresh may recycle the memo under us.
                unique_values = unique_values.copy()
        self._offer_to_cache(table_index, unique, unique_values, generation)
        return values, iteration

    def lookup_batch(self, batch) -> list:
        """Privatized embeddings for every table of one mini-batch,
        e.g. for private inference.

        ``batch`` is either a loader batch (anything with
        ``accessed_rows(table_index)``) or a sequence with one row-id
        array per table.  One read-lock acquisition covers all tables
        — a single shared section and one fused gather per table, not
        a lock-per-table loop — and every table is served at the same
        iteration (also returned by :meth:`lookup_batch_versioned`).
        """
        return self.lookup_batch_versioned(batch)[0]

    def lookup_batch_versioned(self, batch) -> tuple:
        """:meth:`lookup_batch` plus the common serving iteration."""
        if hasattr(batch, "accessed_rows"):
            per_table = [
                batch.accessed_rows(t) for t in range(self.num_tables)
            ]
        else:
            per_table = list(batch)
            if len(per_table) != self.num_tables:
                raise ValueError(
                    f"need one row array per table ({self.num_tables}), "
                    f"got {len(per_table)}"
                )
        per_table = [
            self._validate_rows(t, rows)
            for t, rows in enumerate(per_table)
        ]
        offers = []
        with self._read_section():
            generation, iteration = self._version
            results = []
            for t, rows in enumerate(per_table):
                values, unique, unique_values = self._lookup_in_read(t, rows)
                results.append(values)
                if unique_values is not None:
                    offers.append((t, unique, unique_values.copy()))
        for t, unique, unique_values in offers:
            self._offer_to_cache(t, unique, unique_values, generation)
        return results, iteration

    def export(self) -> dict:
        """Finish the catch-up for all remaining rows and release.

        Returns the same ``name -> array`` mapping (same bits) as
        :func:`repro.lazydp.export_private_model` at this iteration —
        assembled incrementally: rows already served are taken from the
        memo, everything else is caught up now.

        The whole export runs under one write-lock acquisition, so
        every table is caught up at one consistent iteration even if a
        trainer is stepping concurrently (its :meth:`quiesce` window
        waits); the torn-snapshot regression test pins this.
        """
        with self._rw.write():
            self._maybe_refresh()
            released = {
                name: data.copy() for name, data in self._dense.items()
            }
            for table_index, name in enumerate(self.embedding_names):
                remaining = np.nonzero(~self._caught_up[table_index])[0]
                if remaining.size:
                    # Rows with no pending noise are a plain copy; the
                    # memo write is still the cheapest uniform path.
                    self._catch_up(table_index, remaining)
                released[name] = self._served_table(table_index).copy()
        return released

    def audit_exactly_once(self) -> None:
        """Prove serving noise was applied exactly once per row.

        Valid after :meth:`export` (which catches up every row): each
        table's :class:`VersionVector` must stand exactly at the
        serving iteration — any concurrent-lookup interleaving that
        double-applied or skipped a catch-up either raised during
        :meth:`lookup` or is caught here.  Raises
        :class:`repro.lazydp.ledger.LedgerError` on violation.
        """
        with self._rw.read():
            for ledger in self._ledger:
                ledger.audit_complete(self.iteration)

    def stats(self) -> dict:
        """Serving counters (memo effectiveness, catch-up progress)."""
        with self._read_section():
            total_pending = sum(
                int(np.count_nonzero(
                    (self._history[t] < self.iteration)
                    & ~self._caught_up[t]
                ))
                for t in range(self.num_tables)
            )
            generation, iteration = self._version
        with self._stats_lock:
            stats = {
                "iteration": iteration,
                "generation": generation,
                "rows_served": self.rows_served,
                "rows_caught_up": self.rows_caught_up,
                "memo_hits": self.memo_hits,
                "rows_still_pending": total_pending,
                "attached": self._attached is not None,
                "refreshes": self.refreshes,
            }
        if self._cache is not None:
            stats["cache"] = self._cache.stats()
        return stats
