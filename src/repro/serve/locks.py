"""Reader/writer locking for the serving tier.

The serving engine's state splits cleanly into two access classes:

* **readers** — lookups.  They share the snapshot (tables, history,
  memo) and only ever *add* memoized rows; any number may run at once.
* **writers** — refresh after the attached trainer stepped, the
  consistent :meth:`~repro.serve.PrivateServingEngine.export`, and the
  :meth:`~repro.serve.PrivateServingEngine.quiesce` window a live
  trainer steps inside.  They replace or mutate the snapshot wholesale
  and must be exclusive.

:class:`RWLock` is the classic condition-variable shared/exclusive
lock with **writer preference**: once a writer is waiting, new readers
queue behind it.  Without that bias a steady stream of lookups would
starve the refresh writer forever and the engine would keep serving an
old iteration — freshness is part of the serving contract, so the
writer goes first.

The lock is deliberately not reentrant (no owner bookkeeping on the
read side — readers are anonymous and counted).  Callers in
``repro.serve`` never nest sections; the engine's lock hierarchy is
documented in ``docs/architecture.md`` (RW lock, then per-table stripe
locks, then the stats lock, strictly in that order).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side -------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                raise RuntimeError("release_read without acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side -------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without acquire_write")
            self._writer = False
            self._cond.notify_all()

    # -- context managers --------------------------------------------------
    @contextmanager
    def read(self):
        """Shared section: any number of concurrent readers."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive section: no readers, no other writer."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
