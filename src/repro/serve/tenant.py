"""Multi-tenant serving: several (model, epsilon) snapshots, one slab.

Different downstream consumers of one trained model sit at different
points on the privacy/utility curve: an internal dashboard may read a
low-noise release while a public endpoint reads a high-noise one.
Naively that is one full model copy per epsilon — at the paper's
scale (tables of hundreds of GB) a non-starter.

:class:`MultiTenantServer` instead hands every tenant its own
:class:`~repro.serve.engine.PrivateServingEngine` built with
``snapshot=False``: all tenants *reference the same base table slabs*
(zero-copy — ``np.shares_memory`` holds across tenants, which
``tests/test_serve.py`` pins) and differ only in their private
state — the per-tenant read-through memo, history snapshot, noise std
(the epsilon axis) and optional hot-row cache.  The base slabs are
safe to share because no serving path ever writes them: catch-up
lands in the tenant's memo, and a live trainer mutates the slabs only
inside a :meth:`~repro.serve.engine.PrivateServingEngine.quiesce`
window, which each attached tenant's refresh machinery already
handles (every tenant notices the step and invalidates independently).

The memo cost is proportional to the rows a tenant actually serves
(dense worst case), so N tenants over a T-byte model cost T + N x
(touched rows), not N x T.
"""

from __future__ import annotations

import threading

from .engine import PrivateServingEngine


class MultiTenantServer:
    """Attached serving engines for several privacy levels of one model.

    Built over a (quiescent) trainer; each :meth:`add` registers a
    named tenant serving at its own noise std — the knob that moves a
    release along the epsilon axis.  All tenants share the trainer's
    base table slabs zero-copy.
    """

    def __init__(self, trainer, observability=None):
        self._trainer = trainer
        self._obs = observability
        self._tenants: dict = {}
        self._lock = threading.Lock()

    def add(
        self,
        name: str,
        iteration: int | None = None,
        noise_std: float | None = None,
        follow: bool = True,
        cache=None,
    ) -> PrivateServingEngine:
        """Register a tenant and return its serving engine.

        ``noise_std`` defaults to the trainer's observed training std
        (the faithful release); larger values serve a noisier, more
        private view of the same base slabs.  ``cache`` optionally
        fronts the tenant with its own hot-row cache (caches are
        per-tenant by construction — tenants serve different bits).
        """
        engine = PrivateServingEngine.from_trainer(
            self._trainer,
            iteration=(
                int(self._trainer.current_iteration())
                if iteration is None
                else iteration
            ),
            noise_std=noise_std,
            snapshot=False,
            cache=cache,
        )
        if self._obs is not None:
            engine.instrument(self._obs)
        if follow:
            engine.attach(self._trainer)
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            self._tenants[name] = engine
        return engine

    def get(self, name: str) -> PrivateServingEngine:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(f"no tenant {name!r}") from None

    def names(self) -> list:
        with self._lock:
            return sorted(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def remove(self, name: str) -> None:
        """Detach and drop one tenant (its memo and cache go with it)."""
        with self._lock:
            engine = self._tenants.pop(name, None)
        if engine is None:
            raise KeyError(f"no tenant {name!r}")
        engine.detach()

    def close(self) -> None:
        """Detach every tenant (e.g. before resuming heavy training)."""
        with self._lock:
            engines = list(self._tenants.values())
            self._tenants.clear()
        for engine in engines:
            engine.detach()

    def stats(self) -> dict:
        """Per-tenant serving stats plus the shared/private byte split.

        ``shared_slab_bytes`` counts the base embedding slabs once —
        the whole point of the design; ``private_bytes`` is what each
        tenant actually pays (memo rows materialized so far, history
        snapshot, caught-up flags).
        """
        with self._lock:
            tenants = dict(self._tenants)
        shared = 0
        if tenants:
            any_engine = next(iter(tenants.values()))
            shared = sum(
                table.nbytes for table in any_engine._tables
            )
        per_tenant = {}
        for name, engine in tenants.items():
            private = sum(
                served.nbytes
                for served in engine._served
                if served is not None
            )
            private += sum(h.nbytes for h in engine._history)
            private += sum(c.nbytes for c in engine._caught_up)
            stats = engine.stats()
            stats["private_bytes"] = int(private)
            stats["noise_std"] = engine.noise_std
            per_tenant[name] = stats
        return {
            "tenants": per_tenant,
            "num_tenants": len(tenants),
            "shared_slab_bytes": int(shared),
        }
