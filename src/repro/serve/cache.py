"""Skew-aware hot-row cache in front of the serving engine's memo.

Real recommendation traffic is heavily skewed (paper Figure 13(d):
90% of accesses land on 0.6%-36% of rows), so a small cache holding
the hot rows can answer the overwhelming majority of point lookups
without touching the engine's reader/writer machinery at all.

Design:

* **Exact values.** Entries are copies of rows the engine's memo
  already privatized, tagged with the engine *generation* (bumped on
  every refresh).  A probe only returns entries whose tag matches the
  engine's current generation, so a cached answer is bitwise the
  answer the memo would give — cache-on == cache-off, always
  (``tests/test_serve_cache.py`` pins it).
* **Skew-aware admission.** A row is admitted only after
  ``admission_threshold`` slow-path serves (a TinyLFU-style frequency
  filter): one-off rows of the cold tail never displace the hot set.
  At capacity a candidate must beat the coldest resident's observed
  frequency to get in.  Frequencies are periodically halved so the
  hot set can drift with the traffic; they survive invalidation —
  popularity is a property of the traffic, not of the snapshot.
* **Invalidation.** When the attached trainer advances, the engine
  bumps its generation and calls :meth:`invalidate`; resident entries
  are dropped wholesale (and would be unreturnable anyway, since
  their generation tag no longer matches).

:meth:`HotRowCache.for_skew` sizes the cache from the paper's skew
operating points: capacity = the top fraction of rows that carries
90% of the access mass (``repro.data.skew``), i.e. exactly the hot
set the fig13d traffic model concentrates on.

All mutation happens under one small internal lock; probes hold it
only for the dictionary walk.  This lock is a leaf in the serving
lock hierarchy — the cache never calls back into the engine.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from ..data.skew import PAPER_SKEW_TOP_FRACTIONS


class HotRowCache:
    """Frequency-admitted cache of privatized hot rows.

    Parameters
    ----------
    capacity:
        Maximum resident rows (across all tables).
    admission_threshold:
        Slow-path serves a row needs before it may be admitted.
    decay_interval:
        Offers between frequency halvings (defaults to ``8 *
        capacity``); keeps the popularity estimate fresh under
        drifting traffic while preserving the hot/cold ordering.
    """

    def __init__(
        self,
        capacity: int,
        admission_threshold: int = 2,
        decay_interval: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if admission_threshold < 1:
            raise ValueError("admission_threshold must be positive")
        self.capacity = int(capacity)
        self.admission_threshold = int(admission_threshold)
        self._decay_interval = (
            int(decay_interval) if decay_interval is not None
            else 8 * self.capacity
        )
        if self._decay_interval < 1:
            raise ValueError("decay_interval must be positive")
        self._lock = threading.Lock()
        #: (table_index, row) -> (generation, row-vector copy)
        self._entries: dict = {}
        #: (table_index, row) -> slow-path serve count (approximate
        #: popularity; decayed, survives invalidation).
        self._freq: dict = {}
        self._offers = 0
        # -- counters (all mutated under the lock) --
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.evictions = 0
        self.invalidations = 0

    @classmethod
    def for_skew(
        cls,
        level: str,
        num_rows: int,
        admission_threshold: int = 2,
    ) -> "HotRowCache":
        """Size the cache to the paper's hot set for one skew level.

        Capacity is the number of rows that receives
        :data:`~repro.data.skew.PAPER_SKEW_MASS` (90%) of accesses at
        the fig13d operating point — 36% / 10% / 0.6% of ``num_rows``
        for low / medium / high skew.
        """
        if level not in PAPER_SKEW_TOP_FRACTIONS:
            raise ValueError(
                f"unknown skew level: {level!r} "
                f"(choose from {sorted(PAPER_SKEW_TOP_FRACTIONS)})"
            )
        fraction = PAPER_SKEW_TOP_FRACTIONS[level]
        capacity = max(1, math.ceil(fraction * num_rows))
        return cls(capacity, admission_threshold=admission_threshold)

    def __len__(self) -> int:
        return len(self._entries)

    # -- read path ---------------------------------------------------------
    def get_rows(
        self, table_index: int, rows: np.ndarray, generation: int
    ) -> np.ndarray | None:
        """All-or-nothing probe: the ``(len(rows), dim)`` values if every
        row is resident at ``generation``, else ``None``.

        All-or-nothing keeps the fast path trivially consistent: a
        probe never mixes cached rows with engine rows that could come
        from a different generation.
        """
        n = int(rows.size)
        if n == 0:
            return None
        entries = self._entries
        values = []
        with self._lock:
            for row in rows:
                entry = entries.get((table_index, int(row)))
                if entry is None or entry[0] != generation:
                    self.misses += n
                    return None
                values.append(entry[1])
            self.hits += n
        # np.stack copies, so the resident vectors stay private.
        return np.stack(values)

    # -- write path --------------------------------------------------------
    def offer(
        self,
        table_index: int,
        rows: np.ndarray,
        values: np.ndarray,
        generation: int,
    ) -> int:
        """Record a slow-path serve of ``rows`` (unique) and admit the
        ones whose popularity clears the filter; returns admissions.

        ``values[k]`` must be row ``rows[k]``'s served vector (the
        memo's bits); admitted rows store a private copy.
        """
        admitted = 0
        with self._lock:
            freq = self._freq
            entries = self._entries
            for k, row in enumerate(rows):
                key = (table_index, int(row))
                count = freq.get(key, 0) + 1
                freq[key] = count
                self._offers += 1
                if self._offers % self._decay_interval == 0:
                    self._decay_locked()
                    count = freq.get(key, 0)
                resident = entries.get(key)
                if resident is not None:
                    if resident[0] != generation:
                        # Same row, fresh snapshot: replace in place.
                        entries[key] = (generation, np.array(values[k]))
                    continue
                if count < self.admission_threshold:
                    continue
                if len(entries) >= self.capacity:
                    victim, victim_count = self._coldest_locked()
                    if count <= victim_count:
                        continue  # not hotter than the coldest resident
                    del entries[victim]
                    self.evictions += 1
                entries[key] = (generation, np.array(values[k]))
                self.admissions += 1
                admitted += 1
        return admitted

    def _coldest_locked(self) -> tuple:
        """The resident key with the lowest observed frequency."""
        freq = self._freq
        victim = min(self._entries, key=lambda key: freq.get(key, 0))
        return victim, freq.get(victim, 0)

    def _decay_locked(self) -> None:
        """Halve every frequency, dropping the ones that reach zero."""
        self._freq = {
            key: half for key, count in self._freq.items()
            if (half := count // 2) > 0
        }

    # -- lifecycle ---------------------------------------------------------
    def invalidate(self) -> int:
        """Drop every resident entry (the snapshot they came from is
        gone); returns how many were dropped.  Frequencies survive."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += 1
        return dropped

    def stats(self) -> dict:
        with self._lock:
            probes = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "resident_rows": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / probes if probes else 0.0,
                "admissions": self.admissions,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
