"""Closed-loop load generation against the serving engine.

The serving benchmarks and stress tests need realistic traffic, and
"realistic" for embedding lookups means *skewed*: paper Figure 13(d)
puts 90% of accesses on 0.6%-36% of rows depending on the dataset.
:func:`generate_traffic` draws row ids from exactly that calibrated
Zipf model (``repro.data.skew``), through a shared rank-to-row
permutation so every reader hammers the *same* hot set — the traffic
shape that makes the memo and the hot-row cache earn their keep.

:func:`run_load` is a classic closed-loop load generator: each of N
reader threads issues a request, waits for the reply, "thinks" for a
fixed service emulation time, and repeats.  By the interactive
response-time law the offered throughput is N / (Z + S) for think
time Z and server time S — so throughput scales with readers until
the engine saturates, and per-request latency (p50/p99 over a
per-request ``perf_counter`` clock) shows where the knee is.  This is
the shape the acceptance criterion measures: memo-hit lookups leave
the engine's read lock shared, so multi-reader throughput must scale
well past a single reader's.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.skew import paper_skew_spec, zipf_weights


def traffic_probabilities(num_rows: int, skew: str,
                          perm_seed: int = 0) -> np.ndarray:
    """Per-row access probabilities at one fig13d operating point.

    Ranks follow the calibrated Zipf law; a fixed permutation
    (``perm_seed``) scatters rank over row id so the hot set is not
    simply the lowest ids.  Deterministic: the same ``(num_rows,
    skew, perm_seed)`` always yields the same hot rows, so concurrent
    readers and the cache-sizing helper agree on what "hot" means.
    """
    spec = paper_skew_spec(skew, num_rows)
    if spec.kind == "uniform":
        return np.full(num_rows, 1.0 / num_rows)
    weights = zipf_weights(num_rows, spec.exponent)
    probabilities = weights / weights.sum()
    permutation = np.random.default_rng(perm_seed).permutation(num_rows)
    scattered = np.empty(num_rows, dtype=np.float64)
    scattered[permutation] = probabilities
    return scattered


def generate_traffic(
    num_rows: int,
    requests: int,
    batch_size: int,
    skew: str = "medium",
    seed: int = 0,
    perm_seed: int = 0,
) -> np.ndarray:
    """``(requests, batch_size)`` row ids drawn from fig13d traffic.

    ``seed`` varies the draws (give each reader its own); ``perm_seed``
    fixes the rank-to-row scatter (share it across readers so they
    share a hot set).
    """
    probabilities = traffic_probabilities(num_rows, skew, perm_seed)
    cdf = np.cumsum(probabilities)
    cdf[-1] = 1.0  # guard the float tail
    rng = np.random.default_rng(seed)
    draws = rng.random(size=(requests, batch_size))
    return np.searchsorted(cdf, draws, side="right").astype(np.int64)


@dataclass
class LoadReport:
    """One :func:`run_load` run, aggregated across readers."""

    readers: int
    requests: int
    rows: int
    elapsed_seconds: float
    throughput_rps: float
    rows_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    think_time_ms: float
    errors: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "readers": self.readers,
            "requests": self.requests,
            "rows": self.rows,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "rows_per_second": self.rows_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "think_time_ms": self.think_time_ms,
        }


def run_load(
    engine,
    table_index: int = 0,
    readers: int = 1,
    requests_per_reader: int = 200,
    batch_size: int = 8,
    skew: str = "medium",
    think_time: float = 0.0,
    seed: int = 0,
    warmup: bool = True,
) -> LoadReport:
    """Drive ``readers`` closed-loop clients against one served table.

    Traffic is precomputed per reader (generation never sits on the
    measured path); ``warmup=True`` first touches every table row once
    so the measured section is pure memo-hit traffic — the steady
    state a long-running server converges to, and the regime where
    reader scaling is the engine's responsibility rather than the
    catch-up kernel's.  ``think_time`` (seconds) emulates per-request
    client work, giving the closed loop its N/(Z+S) offered load.
    """
    if readers < 1:
        raise ValueError("readers must be positive")
    num_rows = engine.table_rows(table_index)
    traffic = [
        generate_traffic(
            num_rows, requests_per_reader, batch_size, skew=skew,
            seed=seed + 1000 * (r + 1), perm_seed=seed,
        )
        for r in range(readers)
    ]
    if warmup:
        engine.lookup(table_index, np.arange(num_rows))
    latencies = [
        np.zeros(requests_per_reader, dtype=np.float64)
        for _ in range(readers)
    ]
    errors: list = []
    barrier = threading.Barrier(readers + 1)

    def client(r: int) -> None:
        lookup = engine.lookup
        rows = traffic[r]
        clock = time.perf_counter
        recorded = latencies[r]
        try:
            barrier.wait()
            for k in range(requests_per_reader):
                start = clock()
                lookup(table_index, rows[k])
                recorded[k] = clock() - start
                if think_time > 0.0:
                    time.sleep(think_time)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(r,), daemon=True)
        for r in range(readers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    all_latencies = np.concatenate(latencies)
    requests = readers * requests_per_reader
    rows = requests * batch_size
    return LoadReport(
        readers=readers,
        requests=requests,
        rows=rows,
        elapsed_seconds=float(elapsed),
        throughput_rps=requests / elapsed if elapsed > 0 else float("inf"),
        rows_per_second=rows / elapsed if elapsed > 0 else float("inf"),
        latency_p50_ms=float(np.percentile(all_latencies, 50) * 1e3),
        latency_p99_ms=float(np.percentile(all_latencies, 99) * 1e3),
        think_time_ms=think_time * 1e3,
        errors=errors,
    )
