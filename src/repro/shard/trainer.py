"""The sharded LazyDP trainer and its per-shard noise engine.

``ShardedLazyDPTrainer`` runs stages 1-6 of the lazy embedding update
independently per shard, through a pluggable :mod:`executor
<repro.shard.executor>`:

1. dedup the next mini-batch's indices          (shared, ``lazydp_dedup``)
2. route indices to owning shards               (``shard_routing``)
3. per shard — read delays from the shard-local HistoryTable, write the
   new iteration ids, draw catch-up noise, merge with the shard's slice
   of the clipped gradient, and apply one sparse write to the shard's
   parameter slab                               (``shard_model_update``)

**Equivalence guarantee.**  The released model is *bitwise identical* to
the single-shard :class:`repro.lazydp.trainer.LazyDPTrainer` for every
partition strategy, shard count and executor backend, because

* every noise value is a pure function of ``(seed, table, global row,
  iteration)`` — the per-row Philox keying of :mod:`repro.rng.noise` —
  so *which shard* draws it (and alongside which other rows) is
  irrelevant;
* each global row is owned by exactly one shard, so the per-row
  arithmetic ``table[r] -= lr * (grad_r + noise_r)`` is performed once,
  with the operands combined in the same order as the flat trainer; and
* shards share no mutable state, so the executor's schedule cannot
  reorder any row's updates.

The equivalence tests verify this for 1/2/7 shards, fixed and Poisson
sampling, ANS on/off, all partition strategies and both executors.

The per-shard work is split into ``_shard_plan_and_sample`` (stages 2-4:
history read/advance + noise draw, touching only shard-owned history
and ANS state) and ``_shard_apply`` (stages 5-6: gradient merge + slab
write, touching only shard-owned parameters).  The serial trainer runs
both back-to-back per shard;
:class:`repro.pipeline.trainer.PipelinedShardedLazyDPTrainer` moves the
first half onto a background prefetch worker and hands the results
across a staging buffer — legal because the two halves share no state
beyond the immutable plan, so the split point is also a safe thread
boundary.  This class is the sharded *base* the session builder
(:mod:`repro.session`) stacks the pipeline/async capability layers on.
"""

from __future__ import annotations

import numpy as np

from ..kernels import BufferArena, apply_sparse_update, fused_noisy_update
from ..lazydp.ans import ANSEngine
from ..lazydp.trainer import LazyDPTrainer
from ..nn.dlrm import DLRM
from ..rng import NoiseStream
from ..train.common import DPConfig, StageTimer
from .executor import ShardExecutor, SerialExecutor, make_executor
from .plan import PartitionPlan, build_partition_plan
from .router import ShardRouter
from .tables import ShardedEmbeddingBag, ShardedHistoryTable


class ShardedLazyNoiseEngine:
    """Per-shard deferred-noise bookkeeping for all embedding tables.

    Mirrors :class:`repro.lazydp.optimizer.LazyNoiseEngine`'s interface
    (``histories``, ``ans``, ``flush``, ``flushed_through``) so release
    and checkpoint tooling treats sharded trainers uniformly, while the
    hot path runs on shard-local state: one :class:`ShardedHistoryTable`
    per table and one :class:`ANSEngine` per shard (so the draw counters
    need no cross-thread synchronisation).
    """

    def __init__(
        self,
        model: DLRM,
        noise_stream: NoiseStream,
        plan: PartitionPlan,
        use_ans: bool = True,
        flush_chunk_rows: int = 65536,
    ):
        self.model = model
        self.plan = plan
        # Flat facade engine: used by export_private_model, which walks
        # global pending rows outside the per-shard hot path.
        self.ans = ANSEngine(noise_stream, enabled=use_ans)
        self.shard_ans = [
            ANSEngine(noise_stream, enabled=use_ans) for _ in range(plan.num_shards)
        ]
        self.histories = [
            ShardedHistoryTable(plan.table(t)) for t in range(len(model.embeddings))
        ]
        self.flush_chunk_rows = int(flush_chunk_rows)
        self.flushed_through: int | None = None
        #: Per-shard flush scratch — one arena per shard so the
        #: shard-parallel flush stays lock-free.
        self.shard_arenas = [BufferArena() for _ in range(plan.num_shards)]

    @property
    def use_ans(self) -> bool:
        return self.ans.enabled

    @property
    def samples_drawn(self) -> int:
        """Scalar Gaussian draws across the facade and every shard."""
        return self.ans.samples_drawn + sum(
            engine.samples_drawn for engine in self.shard_ans
        )

    def history_bytes(self) -> int:
        """Total HistoryTable footprint — identical to the flat engine's."""
        return int(sum(history.nbytes for history in self.histories))

    def _flush_shard(
        self,
        table_index: int,
        bag: ShardedEmbeddingBag,
        shard: int,
        final_iteration: int,
        learning_rate: float,
        std: float,
        timer: StageTimer | None = None,
    ) -> int:
        history = self.histories[table_index]
        pending_local = history.shard_pending_rows(shard, final_iteration)
        if pending_local.size == 0:
            return 0
        slab = bag.slabs[shard]
        shard_history = history.shard(shard)
        timer = timer or StageTimer()
        with timer.time("terminal_flush"):
            for start in range(0, pending_local.size, self.flush_chunk_rows):
                local = pending_local[start : start + self.flush_chunk_rows]
                global_rows = slab.rows[local]
                delays = shard_history.delays(local, final_iteration)
                noise = self.shard_ans[shard].catchup_noise(
                    table_index,
                    global_rows,
                    delays,
                    final_iteration,
                    bag.dim,
                    std,
                )
                target, row_base = slab.update_target()
                apply_sparse_update(
                    target,
                    global_rows,
                    noise,
                    learning_rate,
                    arena=self.shard_arenas[shard],
                    row_base=row_base,
                    values_writable=True,
                )
                shard_history.mark_updated(local, final_iteration)
        return int(pending_local.size)

    def flush(
        self,
        final_iteration: int,
        learning_rate: float,
        std: float,
        executor: ShardExecutor | None = None,
        timers: list | None = None,
    ) -> int:
        """Apply all deferred noise, shard-parallel; returns rows caught up.

        Bitwise identical to the flat engine's flush: each pending row
        receives the same single catch-up draw and the same one-row
        subtraction, merely grouped by shard instead of by table chunk.
        """
        executor = executor or SerialExecutor()
        caught_up = 0
        for table_index, bag in enumerate(self.model.embeddings):
            tasks = [
                (
                    lambda t=table_index, b=bag, s=s: self._flush_shard(
                        t,
                        b,
                        s,
                        final_iteration,
                        learning_rate,
                        std,
                        timer=timers[s] if timers else None,
                    )
                )
                for s in range(self.plan.num_shards)
            ]
            caught_up += sum(executor.run(tasks))
        self.flushed_through = int(final_iteration)
        return caught_up


class ShardedLazyDPTrainer(LazyDPTrainer):
    """LazyDP with partitioned tables and a parallel model update.

    Parameters beyond :class:`LazyDPTrainer`'s:

    ``num_shards`` / ``partition``
        Geometry of the :class:`PartitionPlan` built for the model (or
        pass a prebuilt ``plan``, e.g. a frequency-balanced one from
        :func:`repro.shard.plan_from_loader`).
    ``executor``
        ``"serial"``, ``"threads"``, or a :class:`ShardExecutor`
        instance; ``max_workers`` caps the thread pool.
    """

    name = "sharded_lazydp"

    def __init__(
        self,
        model: DLRM,
        config: DPConfig,
        noise_seed: int = 1234,
        use_ans: bool = True,
        num_shards: int = 2,
        partition: str = "row_range",
        executor="serial",
        plan: PartitionPlan | None = None,
        max_workers: int | None = None,
        skew=None,
    ):
        if plan is None:
            plan = build_partition_plan(
                model.config, num_shards, strategy=partition, skew=skew
            )
        self._validate_plan(model, plan)
        self.plan = plan  # before super().__init__: _build_engine reads it
        super().__init__(model, config, noise_seed=noise_seed, use_ans=use_ans)
        self.name = "sharded_lazydp" if use_ans else "sharded_lazydp_no_ans"
        self.num_shards = plan.num_shards
        self.router = ShardRouter(plan)
        for t, bag in enumerate(model.embeddings):
            # Always re-adopt: a bag sharded by an *earlier* trainer
            # carries that plan's slabs, which would silently misaddress
            # rows under this trainer's partition.
            model.embeddings[t] = ShardedEmbeddingBag(bag.table, plan.table(t))
        self.executor = make_executor(executor, plan.num_shards, max_workers)
        #: One StageTimer per shard, accumulating that shard's model-update
        #: stage times across all tables and iterations.
        self.shard_timers = [StageTimer() for _ in range(plan.num_shards)]
        #: One apply-kernel arena per shard (shard tasks may run
        #: concurrently; arenas are single-threaded by contract).
        self.shard_apply_arenas = [BufferArena() for _ in range(plan.num_shards)]

    def _build_engine(self, model: DLRM, use_ans: bool):
        """Hook from LazyDPTrainer: build the sharded engine directly
        instead of allocating flat HistoryTables only to discard them."""
        return ShardedLazyNoiseEngine(
            model, self.noise_stream, self.plan, use_ans=use_ans
        )

    @staticmethod
    def _validate_plan(model: DLRM, plan: PartitionPlan) -> None:
        if plan.num_tables != len(model.embeddings):
            raise ValueError(
                f"plan covers {plan.num_tables} tables, model has "
                f"{len(model.embeddings)}"
            )
        for t, bag in enumerate(model.embeddings):
            if plan.table(t).num_rows != bag.num_rows:
                raise ValueError(
                    f"plan table {t} covers {plan.table(t).num_rows} rows, "
                    f"model table has {bag.num_rows}"
                )

    # -- the sharded lazy model update ------------------------------------
    def _shard_plan_and_sample(
        self,
        table_index: int,
        shard: int,
        next_global: np.ndarray,
        next_local: np.ndarray,
        iteration: int,
        dim: int,
        noise_std: float,
        timer,
    ) -> tuple:
        """Stages 2-4 for one shard: history read/advance + noise draw.

        Touches only shard-owned state (that shard's HistoryTable and
        ANS counter), so it can run on any thread — the executor here,
        or the pipelined trainer's prefetch worker — without locks.

        Returns ``(delays, noise_values)``; the delays travel with the
        sampled noise so deferred consumers (the async trainer's apply
        stage) can advance the per-row noise ledger
        (:class:`repro.lazydp.ledger.VersionVector`) at apply time.
        """
        history = self.engine.histories[table_index]
        with timer.time("lazydp_history_read"):
            delays = history.shard_delays(shard, next_local, iteration)
        with timer.time("lazydp_history_update"):
            history.shard_mark_updated(shard, next_local, iteration)
        with timer.time("noise_sampling"):
            # Keyed by *global* row ids: the draw is bitwise the one the
            # flat trainer makes for the same row at the same iteration.
            noise_values = self.engine.shard_ans[shard].catchup_noise(
                table_index, next_global, delays, iteration, dim, noise_std
            )
        return delays, noise_values

    def _shard_apply(
        self,
        bag: ShardedEmbeddingBag,
        shard: int,
        noise_rows: np.ndarray,
        noise_values: np.ndarray,
        grad_rows: np.ndarray,
        grad_values: np.ndarray,
        learning_rate: float,
        timer,
    ) -> None:
        """Stages 5-6 for one shard: merge with the gradient slice and
        write through the shard's parameter slab — one fused kernel
        call against shard-owned scratch, so concurrent shard tasks
        stay allocation- and lock-free."""
        target, row_base = bag.slabs[shard].update_target()
        fused_noisy_update(
            target,
            learning_rate,
            grad_rows,
            grad_values,
            noise_rows,
            noise_values,
            arena=self.shard_apply_arenas[shard],
            row_base=row_base,
            timer=timer,
        )

    def _shard_update_task(
        self,
        table_index: int,
        bag: ShardedEmbeddingBag,
        shard: int,
        next_global: np.ndarray,
        next_local: np.ndarray,
        grad_rows: np.ndarray,
        grad_values: np.ndarray,
        iteration: int,
        noise_std: float,
        learning_rate: float,
    ) -> None:
        """Stages 2-6 of Algorithm 1 for one shard of one table."""
        timer = self.shard_timers[shard]
        _, noise_values = self._shard_plan_and_sample(
            table_index,
            shard,
            next_global,
            next_local,
            iteration,
            bag.dim,
            noise_std,
            timer,
        )
        self._shard_apply(
            bag,
            shard,
            next_global,
            noise_values,
            grad_rows,
            grad_values,
            learning_rate,
            timer,
        )

    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        self._last_noise_std = noise_std
        lr = self.config.learning_rate

        if self._next_batch is not None:
            with self.timer.time("lazydp_dedup"):
                next_rows = self._next_batch.accessed_rows(table_index)
        else:
            # Final iteration: the terminal flush performs every
            # remaining catch-up, shard by shard.
            next_rows = np.empty(0, dtype=np.int64)

        with self.timer.time("shard_routing"):
            routed_next = self.router.scatter(table_index, next_rows)
            routed_grad = self.router.scatter(table_index, sparse_grad.rows)
            grad_values = [
                sparse_grad.values[routed_grad.origin[s]]
                for s in range(self.num_shards)
            ]

        tasks = [
            (
                lambda s=s: self._shard_update_task(
                    table_index,
                    bag,
                    s,
                    routed_next.global_rows[s],
                    routed_next.local[s],
                    routed_grad.global_rows[s],
                    grad_values[s],
                    iteration,
                    noise_std,
                    lr,
                )
            )
            for s in range(self.num_shards)
        ]
        with self.timer.time("shard_model_update"):
            self.executor.run(tasks)

    def finalize(self, final_iteration: int) -> None:
        """Shard-parallel terminal flush (same release as the flat flush)."""
        if final_iteration == 0:
            return
        noise_std = self._flush_noise_std()
        with self.timer.time("terminal_flush"):
            self.engine.flush(
                final_iteration,
                self.config.learning_rate,
                noise_std,
                executor=self.executor,
                timers=self.shard_timers,
            )

    # -- reporting ---------------------------------------------------------
    def kernel_stats(self) -> dict:
        """Flat kernel stats plus the per-shard arena/counter split."""
        stats = super().kernel_stats()
        stats["shard_apply_arenas"] = [
            arena.stats() for arena in self.shard_apply_arenas
        ]
        stats["shard_sampler_arenas"] = [
            engine.arena.stats() for engine in self.engine.shard_ans
        ]
        stats["shard_timer_counters"] = [
            dict(timer.counters) for timer in self.shard_timers
        ]
        return stats

    def per_shard_breakdown(self) -> list:
        """Per-shard stage-time dicts (model-update stages only)."""
        return [dict(timer.totals) for timer in self.shard_timers]

    def _auxiliary_timers(self) -> tuple:
        return super()._auxiliary_timers() + tuple(self.shard_timers)

    def shard_time_summary(self) -> dict:
        """Deterministic merge of the per-shard timers: the per-shard
        breakdown, the same stages summed across shards, each shard's
        total update seconds, and the max/min skew between shards.
        This is what ``TrainResult.shard_times`` carries, so the
        load-balance view survives ``fit`` instead of dying with the
        trainer."""
        per_shard = self.per_shard_breakdown()
        summed: dict = {}
        for totals in per_shard:
            for stage, seconds in totals.items():
                summed[stage] = summed.get(stage, 0.0) + seconds
        update_seconds = self.shard_update_seconds()
        summary = {
            "per_shard": per_shard,
            "summed": summed,
            "update_seconds": update_seconds,
        }
        if update_seconds:
            slowest = max(update_seconds)
            fastest = min(update_seconds)
            summary["skew"] = {
                "max": slowest,
                "min": fastest,
                "spread": slowest - fastest,
            }
        return summary

    def _fit_shard_times(self) -> dict:
        return self.shard_time_summary()

    def shard_update_seconds(self) -> list:
        """Per-shard total model-update seconds (load-balance view)."""
        return [timer.total() for timer in self.shard_timers]

    def close(self) -> None:
        """Shut the executor's worker pool down (idempotent)."""
        self.executor.shutdown()
