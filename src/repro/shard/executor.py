"""Pluggable executors for per-shard model-update work.

Every iteration of the sharded lazy update produces one independent task
per shard — disjoint parameter slabs, disjoint HistoryTables, disjoint
noise key spaces — so tasks can run in any order or concurrently without
synchronisation.  The executor abstraction makes the schedule a config
knob:

* ``SerialExecutor`` — runs tasks in shard order on the calling thread.
  Zero overhead; the reference schedule for equivalence testing.
* ``ThreadPoolShardExecutor`` — fans tasks out over a persistent
  ``concurrent.futures`` pool.  Numpy releases the GIL inside its
  kernels, so Gaussian sampling and the sparse writes genuinely overlap.

Determinism note: results are *bitwise independent of the schedule*
because shards never share state — that is a property of the task
decomposition, not of the executor, and the equivalence tests pin it for
both backends.

Executors are also safe to drive from threads other than the trainer's:
the pipelined trainer (``repro.pipeline``) gives its noise-prefetch
worker a *separate* executor instance of the same backend, so prefetch
fan-out (plan + sample per shard) never queues behind the trainer's
apply tasks, and neither instance needs locks because the task sets
touch disjoint state (histories and ANS counters vs parameter slabs).
"""

from __future__ import annotations

import concurrent.futures

from ..configs import SHARD_EXECUTORS

#: Single source of truth lives in configs (CLI choices + ShardConfig
#: validation read it there); re-exported under the executor's name.
EXECUTOR_BACKENDS = SHARD_EXECUTORS


class ShardExecutor:
    """Runs a list of zero-argument shard tasks; returns their results."""

    name = "base"

    def run(self, tasks: list) -> list:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (no-op for serial)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False


class SerialExecutor(ShardExecutor):
    """Shard tasks one after another on the calling thread."""

    name = "serial"

    def run(self, tasks: list) -> list:
        return [task() for task in tasks]


class ThreadPoolShardExecutor(ShardExecutor):
    """Shard tasks on a persistent thread pool.

    The pool is created once and reused across iterations — per-iteration
    pool churn would dwarf the per-shard work at test scale.  Exceptions
    inside tasks propagate to the caller after all tasks finish
    submitting, so a failing shard cannot be silently dropped.
    """

    name = "threads"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = int(max_workers)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="shard",
        )

    def run(self, tasks: list) -> list:
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(
    spec, num_shards: int, max_workers: int | None = None
) -> ShardExecutor:
    """Build an executor from a backend name (or pass one through).

    ``max_workers`` defaults to one worker per shard — tasks are
    shard-grained, so more workers than shards cannot help.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "threads":
        return ThreadPoolShardExecutor(
            max_workers=max_workers or max(num_shards, 1)
        )
    raise ValueError(
        f"unknown executor backend: {spec!r} "
        f"(choose from {EXECUTOR_BACKENDS})"
    )
