"""Scattering batch indices to shards and gathering results back.

The router is the glue between global row ids (what batches, gradients
and the noise stream speak) and shard-local row ids (what per-shard
parameter slabs and HistoryTables speak).  ``scatter`` splits a global
index array into per-shard local arrays; ``gather`` reassembles
per-shard row results into the original order.  Both directions are
pure permutations — a round trip is exact, which the property tests
verify on heavily skewed index distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .plan import PartitionPlan, TablePartition


@dataclass(frozen=True)
class RoutedIndices:
    """One table's global index array split by owning shard.

    ``local[s]`` are shard-local row ids (positions within shard ``s``'s
    row list), ``global_rows[s]`` the matching global ids.  ``origin[s]``
    maps each entry back to its position in the input array, so
    ``gather`` can restore the original order.
    """

    table_index: int
    input_size: int
    local: tuple  # per shard: (n_s,) int64 local row ids
    global_rows: tuple  # per shard: (n_s,) int64 global row ids
    origin: tuple  # per shard: (n_s,) int64 input positions

    @property
    def num_shards(self) -> int:
        return len(self.local)

    def shard_count(self, shard: int) -> int:
        return int(self.local[shard].size)

    def counts(self) -> np.ndarray:
        """Per-shard routed index counts (load-balance diagnostics)."""
        return np.array([rows.size for rows in self.local], dtype=np.int64)


class ShardRouter:
    """Scatter/gather between global and shard-local index spaces."""

    def __init__(self, plan: PartitionPlan):
        self.plan = plan

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def _partition(self, table_index: int) -> TablePartition:
        return self.plan.table(table_index)

    def scatter(self, table_index: int, rows: np.ndarray) -> RoutedIndices:
        """Split ``rows`` (global ids, duplicates allowed) by owning shard.

        Within each shard the input order is preserved, so sorted unique
        inputs stay sorted unique per shard — the invariant HistoryTable
        and ``merge_sparse_updates`` rely on.
        """
        part = self._partition(table_index)
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= part.num_rows):
            raise IndexError(
                f"row id out of range for table {table_index} "
                f"({part.num_rows} rows)"
            )
        owners = part.shard_of[rows]
        # Stable counting-sort by owner keeps per-shard input order.
        order = np.argsort(owners, kind="stable")
        sorted_rows = rows[order]
        sorted_owners = owners[order]
        boundaries = np.searchsorted(
            sorted_owners, np.arange(self.num_shards + 1, dtype=np.int64)
        )
        local, global_rows, origin = [], [], []
        for s in range(self.num_shards):
            lo, hi = boundaries[s], boundaries[s + 1]
            shard_globals = sorted_rows[lo:hi]
            local.append(part.local_of[shard_globals])
            global_rows.append(shard_globals)
            origin.append(order[lo:hi])
        return RoutedIndices(
            table_index=table_index,
            input_size=rows.size,
            local=tuple(local),
            global_rows=tuple(global_rows),
            origin=tuple(origin),
        )

    def gather(
        self, routed: RoutedIndices, per_shard_values: list, dim: int | None = None
    ) -> np.ndarray:
        """Reassemble per-shard row results into input order.

        ``per_shard_values[s]`` is ``(n_s, dim)`` (or ``(n_s,)``), aligned
        with ``routed.local[s]``.  Returns the array the flat code path
        would have produced for the original index array.
        """
        if len(per_shard_values) != routed.num_shards:
            raise ValueError("one value array per shard required")
        reference = None
        for values in per_shard_values:
            if values is not None and np.asarray(values).size:
                reference = np.asarray(values)
                break
        if reference is None:
            shape = (
                (routed.input_size,) if dim is None else (routed.input_size, dim)
            )
            return np.zeros(shape, dtype=np.float64)
        out_shape = (routed.input_size,) + reference.shape[1:]
        out = np.empty(out_shape, dtype=reference.dtype)
        for s in range(routed.num_shards):
            if routed.origin[s].size:
                out[routed.origin[s]] = per_shard_values[s]
        return out

    def shard_load(self, table_index: int, rows: np.ndarray) -> np.ndarray:
        """Per-shard routed counts without materialising the full scatter."""
        part = self._partition(table_index)
        owners = part.shard_of[np.asarray(rows, dtype=np.int64)]
        return np.bincount(owners, minlength=self.num_shards).astype(np.int64)
