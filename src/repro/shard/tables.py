"""Sharded views of embedding tables and their lazy-noise bookkeeping.

``ShardedEmbeddingBag`` keeps the flat table (global row order) as the
storage of record — forward/backward and every gradient view are
inherited from :class:`repro.nn.layers.EmbeddingBag` unchanged, exactly
as the paper leaves forward/backward untouched.  What it adds is the
*model-update* structure: per-shard :class:`ShardSlab` windows (zero-copy
slice-view ``Parameter`` slabs for contiguous partitions, index windows
for hash partitions) so every noisy write stays shard-local.

``ShardedHistoryTable`` holds one :class:`HistoryTable` per shard,
indexed by shard-local row ids, while also implementing the flat
table's API (``delays`` / ``mark_updated`` / ``pending_rows`` /
``snapshot`` over global ids) so checkpointing and private-model export
work on sharded trainers without change.

Ownership invariants (what makes lock-free parallel and pipelined
updates legal):

* **Row ownership** — every global row belongs to exactly one shard
  (:class:`repro.shard.plan.TablePartition` is a partition in the
  mathematical sense), so per-row arithmetic happens exactly once, on
  state only that shard's task touches.
* **Noise keying** — noise is always drawn against *global* row ids;
  shard-local ids exist only for compact history/slab addressing.  A
  row's noise is therefore identical no matter which shard (or thread,
  or pipeline stage) draws it.
"""

from __future__ import annotations

import numpy as np

from ..lazydp.history import HistoryTable
from ..nn.layers import EmbeddingBag
from ..nn.parameter import Parameter
from .plan import TablePartition


class ShardSlab:
    """One shard's window onto an embedding table's parameter storage.

    For contiguous partitions the slab owns a real ``Parameter`` whose
    data is a zero-copy slice view of the flat table — reading or writing
    the slab touches exactly the shard's rows and nothing else.  For hash
    partitions the shard's rows are scattered, so the slab routes reads
    and writes through its global row list instead.
    """

    def __init__(self, table: Parameter, partition: TablePartition, shard_index: int):
        self.table = table
        self.shard_index = int(shard_index)
        self.rows = partition.shard_rows[shard_index]
        self.param: Parameter | None = None
        self._start = 0
        if partition.contiguous and self.rows.size:
            start, stop = int(self.rows[0]), int(self.rows[-1]) + 1
            self._start = start
            self.param = Parameter(
                f"{table.name}.shard_{shard_index}",
                table.data[start:stop],
                param_id=table.param_id,
                is_embedding=True,
            )

    @property
    def num_rows(self) -> int:
        return int(self.rows.size)

    @property
    def nbytes(self) -> int:
        return int(
            self.rows.size * self.table.data.shape[1] * self.table.data.itemsize
        )

    def read_rows(self, global_rows: np.ndarray) -> np.ndarray:
        """Values of shard-owned rows, addressed by global id."""
        if self.param is not None:
            return self.param.data[global_rows - self._start]
        return self.table.data[global_rows]

    def update_target(self) -> tuple:
        """``(array, row_base)`` the fused apply kernel writes through.

        A contiguous slab resolves to its zero-copy window with the
        window's global start as the row base; a hash slab resolves to
        the flat table addressed by global ids.  Either way the kernel
        touches exactly the bytes ``write_rows`` would.
        """
        if self.param is not None:
            return self.param.data, self._start
        return self.table.data, 0

    def write_rows(
        self, global_rows: np.ndarray, values: np.ndarray, learning_rate: float
    ) -> None:
        """``row -= lr * value`` for shard-owned rows (global ids).

        Bitwise identical to the flat table's update: a contiguous slab
        is a view of the same memory, and the fancy-indexed fallback
        addresses the same elements.
        """
        if global_rows.size == 0:
            return
        if self.param is not None:
            self.param.data[global_rows - self._start] -= learning_rate * values
        else:
            self.table.data[global_rows] -= learning_rate * values

    def materialize(self) -> np.ndarray:
        """Copy of the shard's rows in shard-local order (diagnostics)."""
        if self.param is not None:
            return self.param.data.copy()
        return self.table.data[self.rows].copy()


class ShardedEmbeddingBag(EmbeddingBag):
    """An :class:`EmbeddingBag` carrying a partition and per-shard slabs.

    Forward, backward and all four gradient views are inherited — the
    flat table in global row order remains the storage of record, so
    every existing consumer (checkpointing, export, audit) keeps
    working.  The sharded trainer uses ``slabs`` for its shard-local
    model update.
    """

    def __init__(self, table: Parameter, partition: TablePartition):
        super().__init__(table)
        if partition.num_rows != self.num_rows:
            raise ValueError(
                f"partition covers {partition.num_rows} rows, table "
                f"{table.name} has {self.num_rows}"
            )
        self.partition = partition
        self.slabs = [
            ShardSlab(table, partition, s) for s in range(partition.num_shards)
        ]

    @classmethod
    def adopt(
        cls, bag: EmbeddingBag, partition: TablePartition
    ) -> "ShardedEmbeddingBag":
        """Wrap an existing bag's table (shared storage, no copy)."""
        return cls(bag.table, partition)

    @property
    def num_shards(self) -> int:
        return len(self.slabs)

    def shard_rows(self, shard: int) -> np.ndarray:
        return self.partition.shard_rows[shard]


class ShardedHistoryTable:
    """Per-shard HistoryTables with a flat-compatible facade.

    Shard-local methods (``shard_delays`` / ``shard_mark_updated`` /
    ``shard_pending_rows``) take shard-local row ids and touch only that
    shard's array — the hot path of the parallel executor.  The flat API
    (global row ids) mirrors :class:`repro.lazydp.history.HistoryTable`
    so release/export and checkpoint code is oblivious to sharding.
    """

    BYTES_PER_ENTRY = HistoryTable.BYTES_PER_ENTRY

    def __init__(self, partition: TablePartition):
        self.partition = partition
        self.shards = [
            HistoryTable(rows.size) if rows.size else None
            for rows in partition.shard_rows
        ]

    @property
    def num_rows(self) -> int:
        return self.partition.num_rows

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def nbytes(self) -> int:
        return int(sum(s.nbytes for s in self.shards if s is not None))

    # -- shard-local API (used by the parallel model update) --------------
    def shard(self, shard: int) -> HistoryTable | None:
        return self.shards[shard]

    def shard_delays(
        self, shard: int, local_rows: np.ndarray, iteration: int
    ) -> np.ndarray:
        if local_rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        return self.shards[shard].delays(local_rows, iteration)

    def shard_mark_updated(
        self, shard: int, local_rows: np.ndarray, iteration: int
    ) -> None:
        if local_rows.size:
            self.shards[shard].mark_updated(local_rows, iteration)

    def shard_pending_rows(self, shard: int, iteration: int) -> np.ndarray:
        """Shard-local ids of rows still owed noise (used by the flush)."""
        if self.shards[shard] is None:
            return np.zeros(0, dtype=np.int64)
        return self.shards[shard].pending_rows(iteration)

    # -- flat-compatible API (global row ids) ------------------------------
    def _route(self, rows: np.ndarray) -> tuple:
        rows = np.asarray(rows, dtype=np.int64)
        return (self.partition.shard_of[rows], self.partition.local_of[rows], rows)

    def last_updated(self, rows: np.ndarray) -> np.ndarray:
        owners, locals_, rows = self._route(rows)
        out = np.zeros(rows.size, dtype=np.int32)
        for s in range(self.num_shards):
            mask = owners == s
            if mask.any():
                out[mask] = self.shards[s].last_updated(locals_[mask])
        return out

    def delays(self, rows: np.ndarray, iteration: int) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        delays = np.int64(iteration) - self.last_updated(rows).astype(np.int64)
        if np.any(delays < 0):
            raise ValueError(
                "HistoryTable is ahead of the requested iteration; "
                "rows must not be caught up twice in one iteration"
            )
        return delays

    def mark_updated(self, rows: np.ndarray, iteration: int) -> None:
        owners, locals_, rows = self._route(rows)
        for s in range(self.num_shards):
            mask = owners == s
            if mask.any():
                self.shards[s].mark_updated(locals_[mask], iteration)

    def pending_rows(self, iteration: int) -> np.ndarray:
        """Global ids of all rows still owed noise (sorted)."""
        pending = [
            self.partition.shard_rows[s][self.shard_pending_rows(s, iteration)]
            for s in range(self.num_shards)
        ]
        pending = [p for p in pending if p.size]
        if not pending:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(pending))

    def snapshot(self) -> np.ndarray:
        """Global-order copy of the raw table (checkpointing, tests)."""
        out = np.zeros(self.num_rows, dtype=np.int32)
        for s, table in enumerate(self.shards):
            if table is not None:
                out[self.partition.shard_rows[s]] = table.snapshot()
        return out

    def load_snapshot(self, snapshot: np.ndarray) -> None:
        """Restore from a global-order snapshot (checkpoint resume)."""
        snapshot = np.asarray(snapshot, dtype=np.int32)
        if snapshot.shape[0] != self.num_rows:
            raise ValueError("snapshot size does not match table")
        for s, table in enumerate(self.shards):
            if table is not None:
                table.load_snapshot(snapshot[self.partition.shard_rows[s]])
