"""Sharded embedding engine: partitioned tables, per-shard lazy noise
state, and a parallel model-update executor.

The flat :class:`repro.lazydp.trainer.LazyDPTrainer` holds every
embedding table as one array and walks the lazy update serially; at the
paper's 100s-of-GB scale a production system partitions each table into
shards and updates them in parallel.  This package supplies that layer:

* :mod:`plan <repro.shard.plan>` — :class:`PartitionPlan` + planners
  (``row_range`` / ``frequency`` / ``hash``), frequency-balanced from
  observed trace statistics.
* :mod:`router <repro.shard.router>` — :class:`ShardRouter` scattering a
  batch's per-table indices into shard-local index arrays and gathering
  results back.
* :mod:`tables <repro.shard.tables>` — :class:`ShardedEmbeddingBag`
  (per-shard ``Parameter`` slabs) and :class:`ShardedHistoryTable`
  (per-shard delay bookkeeping), both flat-API compatible.
* :mod:`executor <repro.shard.executor>` — serial and thread-pool shard
  executors.
* :mod:`trainer <repro.shard.trainer>` — :class:`ShardedLazyDPTrainer`,
  verified bitwise-equivalent to the flat trainer for every shard count,
  partition strategy and executor backend.
"""

from .executor import (
    EXECUTOR_BACKENDS,
    SerialExecutor,
    ShardExecutor,
    ThreadPoolShardExecutor,
    make_executor,
)
from .plan import (
    PARTITION_STRATEGIES,
    PartitionPlan,
    TablePartition,
    access_weights_from_skew,
    access_weights_from_trace,
    build_partition_plan,
    partition_frequency,
    partition_hash,
    partition_row_range,
    plan_from_loader,
)
from .router import RoutedIndices, ShardRouter
from .tables import ShardedEmbeddingBag, ShardedHistoryTable, ShardSlab
from .trainer import ShardedLazyDPTrainer, ShardedLazyNoiseEngine

__all__ = [
    "EXECUTOR_BACKENDS",
    "SerialExecutor",
    "ShardExecutor",
    "ThreadPoolShardExecutor",
    "make_executor",
    "PARTITION_STRATEGIES",
    "PartitionPlan",
    "TablePartition",
    "access_weights_from_skew",
    "access_weights_from_trace",
    "build_partition_plan",
    "partition_frequency",
    "partition_hash",
    "partition_row_range",
    "plan_from_loader",
    "RoutedIndices",
    "ShardRouter",
    "ShardedEmbeddingBag",
    "ShardedHistoryTable",
    "ShardSlab",
    "ShardedLazyDPTrainer",
    "ShardedLazyNoiseEngine",
]
