"""Partitioning embedding tables into shards.

A :class:`PartitionPlan` assigns every row of every embedding table to
exactly one of ``num_shards`` shards.  Three strategies are provided:

* ``"row_range"`` — contiguous equal-row ranges.  The default: shard
  boundaries are cache-friendly, per-shard parameter slabs are zero-copy
  views of the flat table, and with the paper's uniform trace every shard
  sees the same expected load.
* ``"frequency"`` — contiguous ranges whose *cut points* are chosen so
  each shard carries an equal share of the observed (or modelled) access
  mass.  With skewed traces (paper Figure 13d) equal-row ranges would
  leave the shard owning the hot head doing nearly all the catch-up work;
  frequency cuts rebalance it while keeping ranges contiguous.
* ``"hash"`` — rows are scattered by a splitmix64 hash.  Statistically
  balances any skew without needing a trace, at the cost of
  non-contiguous shards (per-shard updates become gather/scatter).

Row-to-shard assignment is deterministic given (strategy, num_shards,
weights), so two processes building the same plan agree on ownership —
the property a future multi-node deployment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..configs import DLRMConfig, SHARD_PARTITIONS
from ..data.skew import SkewSpec, zipf_weights
from ..rng.philox import splitmix64

#: Single source of truth lives in configs (CLI choices + ShardConfig
#: validation read it there); re-exported under the planner's name.
PARTITION_STRATEGIES = SHARD_PARTITIONS

#: Salt for the hash strategy, fixed so plans are reproducible.
_HASH_SALT = np.uint64(0x5A5DC0DE)


@dataclass(frozen=True)
class TablePartition:
    """One table's row -> shard assignment.

    ``shard_rows[s]`` holds the sorted global row ids owned by shard
    ``s``; ``shard_of``/``local_of`` are dense per-row lookup arrays used
    by the router (``local_of[r]`` is ``r``'s index within its owning
    shard's row list).  ``contiguous`` marks range partitions, for which
    per-shard parameter slabs can be plain slice views.
    """

    table_index: int
    num_rows: int
    shard_rows: tuple  # tuple of np.ndarray, one per shard
    shard_of: np.ndarray  # (num_rows,) int32
    local_of: np.ndarray  # (num_rows,) int64
    contiguous: bool
    weights_balanced: float = 1.0  # max shard mass / mean shard mass

    @property
    def num_shards(self) -> int:
        return len(self.shard_rows)

    def shard_size(self, shard: int) -> int:
        return int(self.shard_rows[shard].size)

    def validate(self) -> None:
        """Every row owned exactly once, lookups consistent (tests)."""
        seen = (
            np.concatenate([rows for rows in self.shard_rows])
            if self.shard_rows
            else np.empty(0, dtype=np.int64)
        )
        if np.unique(seen).size != self.num_rows or seen.size != self.num_rows:
            raise AssertionError("rows must partition the table exactly")
        for s, rows in enumerate(self.shard_rows):
            if np.any(self.shard_of[rows] != s):
                raise AssertionError("shard_of inconsistent with shard_rows")
            if np.any(self.local_of[rows] != np.arange(rows.size)):
                raise AssertionError("local_of inconsistent with shard_rows")


@dataclass(frozen=True)
class PartitionPlan:
    """Row -> shard assignment for every embedding table of a model."""

    num_shards: int
    strategy: str
    tables: tuple = field(default_factory=tuple)  # TablePartition per table

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    def table(self, index: int) -> TablePartition:
        return self.tables[index]

    def max_shard_rows(self) -> int:
        """Rows of the heaviest shard across tables (per-shard capacity)."""
        return max(
            max((rows.size for rows in part.shard_rows), default=0)
            for part in self.tables
        )

    def describe(self) -> str:
        lines = [f"PartitionPlan: {self.num_shards} shards, strategy={self.strategy}"]
        for part in self.tables:
            sizes = [rows.size for rows in part.shard_rows]
            lines.append(
                f"  table {part.table_index}: {part.num_rows} rows -> "
                f"{sizes} (imbalance {part.weights_balanced:.2f}x)"
            )
        return "\n".join(lines)


def _partition_from_shard_of(
    table_index: int,
    shard_of: np.ndarray,
    num_shards: int,
    contiguous: bool,
    weights: np.ndarray | None,
) -> TablePartition:
    num_rows = shard_of.shape[0]
    local_of = np.zeros(num_rows, dtype=np.int64)
    shard_rows = []
    for s in range(num_shards):
        rows = np.nonzero(shard_of == s)[0].astype(np.int64)
        local_of[rows] = np.arange(rows.size, dtype=np.int64)
        shard_rows.append(rows)
    imbalance = 1.0
    if weights is not None and weights.sum() > 0:
        masses = np.array([float(weights[rows].sum()) for rows in shard_rows])
        mean = masses.mean()
        if mean > 0:
            imbalance = float(masses.max() / mean)
    return TablePartition(
        table_index=table_index,
        num_rows=num_rows,
        shard_rows=tuple(shard_rows),
        shard_of=shard_of.astype(np.int32),
        local_of=local_of,
        contiguous=contiguous,
        weights_balanced=imbalance,
    )


def partition_row_range(
    table_index: int, num_rows: int, num_shards: int
) -> TablePartition:
    """Contiguous equal-row ranges (the first ``num_rows % num_shards``
    shards get one extra row, numpy ``array_split`` style)."""
    bounds = np.linspace(0, num_rows, num_shards + 1).round().astype(np.int64)
    shard_of = np.zeros(num_rows, dtype=np.int32)
    for s in range(num_shards):
        shard_of[bounds[s] : bounds[s + 1]] = s
    uniform = np.ones(num_rows, dtype=np.float64)
    return _partition_from_shard_of(
        table_index, shard_of, num_shards, contiguous=True, weights=uniform
    )


def partition_frequency(
    table_index: int, weights: np.ndarray, num_shards: int
) -> TablePartition:
    """Contiguous ranges cut at equal access-mass quantiles.

    ``weights[r]`` is row ``r``'s observed (or modelled) access frequency;
    cut points are placed so every shard carries roughly ``total / S`` of
    the mass.  Rows that were never accessed still belong to some shard —
    they cost nothing per iteration and only matter at the terminal flush.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("access weights must be non-negative")
    num_rows = weights.shape[0]
    total = weights.sum()
    if total <= 0:
        return partition_row_range(table_index, num_rows, num_shards)
    cumulative = np.cumsum(weights)
    # Adaptive greedy min-max cuts: each shard targets an equal share of
    # the *remaining* mass, so a hot head row is isolated into its own
    # shard and the tail is rebalanced across the rest (a fixed-quantile
    # cut would instead leave the following shards empty).  Every shard
    # keeps at least one row while rows remain.
    bounds = [0]
    consumed = 0.0
    for s in range(num_shards - 1):
        start = bounds[-1]
        remaining_shards = num_shards - s
        target = consumed + (total - consumed) / remaining_shards
        cut = int(np.searchsorted(cumulative, target, side="left"))
        # Include the boundary row when that lands closer to the target.
        if cut < num_rows and (
            cut < start + 1
            or (cumulative[cut] - target) <= (target - cumulative[cut - 1])
        ):
            cut += 1
        cut = max(cut, start + 1)  # non-empty shard
        cut = min(cut, num_rows - (remaining_shards - 1))  # leave rows over
        bounds.append(cut)
        consumed = cumulative[cut - 1]
    bounds.append(num_rows)
    bounds = np.maximum.accumulate(np.asarray(bounds, dtype=np.int64))
    shard_of = np.zeros(num_rows, dtype=np.int32)
    for s in range(num_shards):
        shard_of[bounds[s] : bounds[s + 1]] = s
    return _partition_from_shard_of(
        table_index, shard_of, num_shards, contiguous=True, weights=weights
    )


def partition_hash(
    table_index: int, num_rows: int, num_shards: int
) -> TablePartition:
    """Scatter rows across shards by a splitmix64 hash of the row id."""
    rows = np.arange(num_rows, dtype=np.uint64)
    hashed = splitmix64(rows ^ (_HASH_SALT + np.uint64(table_index)))
    shard_of = (hashed % np.uint64(num_shards)).astype(np.int32)
    uniform = np.ones(num_rows, dtype=np.float64)
    return _partition_from_shard_of(
        table_index, shard_of, num_shards, contiguous=False, weights=uniform
    )


def access_weights_from_trace(per_iteration_rows: list, num_rows: int) -> np.ndarray:
    """Per-row access counts from a raw lookup trace.

    ``per_iteration_rows`` is the output of
    :func:`repro.data.tracestats.collect_trace`; duplicates count — the
    catch-up cost a shard pays tracks access *mass*, not footprint.
    """
    counts = np.zeros(num_rows, dtype=np.float64)
    for rows in per_iteration_rows:
        np.add.at(counts, np.asarray(rows, dtype=np.int64), 1.0)
    return counts


def access_weights_from_skew(num_rows: int, skew: SkewSpec | None) -> np.ndarray:
    """Modelled per-row access weights when no trace is available.

    Uniform traces weigh every row equally; Zipf traces use the calibrated
    popularity curve of :mod:`repro.data.skew` (rows are popularity-ranked
    in the synthetic generator, so rank == row id).
    """
    if skew is None or skew.kind == "uniform":
        return np.ones(num_rows, dtype=np.float64)
    return zipf_weights(num_rows, skew.exponent)


def build_partition_plan(
    config: DLRMConfig,
    num_shards: int,
    strategy: str = "row_range",
    weights_per_table: list | None = None,
    skew: SkewSpec | None = None,
) -> PartitionPlan:
    """A :class:`PartitionPlan` for every table of ``config``.

    ``weights_per_table`` (one array per table, e.g. from
    :func:`access_weights_from_trace`) feeds the ``"frequency"`` strategy;
    without it, ``skew`` supplies modelled weights via
    :func:`access_weights_from_skew`.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy: {strategy!r} "
            f"(choose from {PARTITION_STRATEGIES})"
        )
    tables = []
    for t, num_rows in enumerate(config.table_rows):
        shards = min(num_shards, num_rows)
        if strategy == "row_range":
            part = partition_row_range(t, num_rows, shards)
        elif strategy == "hash":
            part = partition_hash(t, num_rows, shards)
        else:
            if weights_per_table is not None:
                weights = np.asarray(weights_per_table[t], dtype=np.float64)
                if weights.shape[0] != num_rows:
                    raise ValueError(
                        f"table {t}: weights cover {weights.shape[0]} rows, "
                        f"table has {num_rows}"
                    )
            else:
                weights = access_weights_from_skew(num_rows, skew)
            part = partition_frequency(t, weights, shards)
        if shards < num_shards:
            # Pad with empty shards so every table exposes the same shard
            # count to the router and executor.
            empty = tuple(
                np.empty(0, dtype=np.int64) for _ in range(num_shards - shards)
            )
            part = TablePartition(
                table_index=part.table_index,
                num_rows=part.num_rows,
                shard_rows=part.shard_rows + empty,
                shard_of=part.shard_of,
                local_of=part.local_of,
                contiguous=part.contiguous,
                weights_balanced=part.weights_balanced,
            )
        tables.append(part)
    return PartitionPlan(
        num_shards=num_shards, strategy=strategy, tables=tuple(tables)
    )


def plan_from_loader(
    config: DLRMConfig, num_shards: int, loader, strategy: str = "frequency"
) -> PartitionPlan:
    """Build a plan balanced by the access frequencies a loader produces.

    Walks the loader once per table via
    :func:`repro.data.tracestats.collect_trace`.  Intended for offline
    planning — the trace pass costs one epoch of index generation, no
    model work.
    """
    from ..data.tracestats import collect_trace

    weights = [
        access_weights_from_trace(collect_trace(loader, t), config.table_rows[t])
        for t in range(config.num_tables)
    ]
    return build_partition_plan(
        config, num_shards, strategy=strategy, weights_per_table=weights
    )
