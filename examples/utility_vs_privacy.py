"""The privacy-utility trade-off, measured end to end.

The paper's motivation leans on Denison et al. [13]: DP-SGD can train
useful ad models.  This script quantifies that axis with this repo's own
machinery: sweep the noise multiplier, train LazyDP models, and report
held-out AUC / log-loss next to the (epsilon, delta) each sigma buys —
plus the non-private SGD ceiling for reference.

It also demonstrates the point that makes LazyDP deployable at all:
utility is identical to eager DP-SGD's because the trained model is the
same (not just similar) — shown here by evaluating both.

Run:  python examples/utility_vs_privacy.py
"""

import numpy as np

from repro import configs
from repro.testing import trainer_for
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig, evaluate_model

ROWS = 4096
BATCH = 256
ITERATIONS = 40
SIGMAS = (0.0, 0.3, 1.0, 3.0)


def train_and_score(algorithm, sigma, config, held_out):
    dp = DPConfig(
        noise_multiplier=sigma,
        max_grad_norm=2.0,
        learning_rate=0.1,
        delta=1e-5,
    )
    model = DLRM(config, seed=7)
    dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 14)
    loader = DataLoader(dataset, batch_size=BATCH, num_batches=ITERATIONS,
                        seed=5)
    trainer = trainer_for(algorithm, model, dp, noise_seed=99)
    result = trainer.fit(loader)
    metrics = evaluate_model(model, held_out)
    return metrics, result.epsilon


def main() -> None:
    config = configs.small_dlrm(rows=ROWS)
    eval_dataset = SyntheticClickDataset(config, seed=3,
                                         num_examples=1 << 14)
    # Held-out examples disjoint from anything the loader can sample.
    held_out = [eval_dataset.batch(np.arange(12000, 12000 + 2048))]

    rows = []
    sgd_metrics, _ = train_and_score("sgd", 0.0, config, held_out)
    rows.append(["sgd (non-private)", None, sgd_metrics["auc"],
                 sgd_metrics["log_loss"]])
    for sigma in SIGMAS:
        metrics, epsilon = train_and_score("lazydp", sigma, config, held_out)
        label = f"lazydp sigma={sigma:g}"
        if epsilon is not None and np.isinf(epsilon):
            epsilon = "inf (no privacy)"
        rows.append([label, epsilon, metrics["auc"], metrics["log_loss"]])

    print(format_table(
        ["model", "epsilon", "held-out AUC", "log loss"], rows,
        title=f"Privacy-utility trade-off ({ITERATIONS} iterations, "
              f"batch {BATCH}, delta 1e-5)",
    ))
    print()

    # LazyDP's utility IS DP-SGD's utility: same trained model.
    lazy_metrics, _ = train_and_score("lazydp_no_ans", 1.0, config, held_out)
    eager_metrics, _ = train_and_score("dpsgd_f", 1.0, config, held_out)
    print(f"AUC at sigma=1.0:  LazyDP {lazy_metrics['auc']:.6f}  vs  "
          f"DP-SGD(F) {eager_metrics['auc']:.6f}")
    assert abs(lazy_metrics["auc"] - eager_metrics["auc"]) < 1e-9
    print("identical, as the equivalence guarantee requires.")


if __name__ == "__main__":
    main()
