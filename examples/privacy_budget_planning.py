"""Plan a training run against a privacy budget with the RDP accountant.

Practitioners pick (epsilon, delta) first and derive the noise multiplier
and iteration count from it.  This script sweeps the accountant the way
Opacus' ``get_noise_multiplier`` does, shows the epsilon trajectory over
training, and demonstrates that LazyDP consumes exactly the same budget
as eager DP-SGD — lazy noise placement is invisible to the accountant.

Run:  python examples/privacy_budget_planning.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.privacy import RDPAccountant, compute_rdp, rdp_to_epsilon

DATASET_SIZE = 4_000_000      # Criteo-Kaggle-scale click log
BATCH = 2048
EPOCHS = 1
DELTA = 1e-6


def epsilon_after(noise_multiplier: float, steps: int, q: float) -> float:
    rdp = compute_rdp(q, noise_multiplier, steps)
    return rdp_to_epsilon(rdp, DELTA)[0]


def noise_for_budget(target_epsilon: float, steps: int, q: float) -> float:
    """Smallest sigma meeting the budget, by bisection (like Opacus)."""
    low, high = 0.2, 64.0
    while high / low > 1.001:
        mid = (low * high) ** 0.5
        if epsilon_after(mid, steps, q) > target_epsilon:
            low = mid
        else:
            high = mid
    return high


def main() -> None:
    steps_per_epoch = DATASET_SIZE // BATCH
    steps = steps_per_epoch * EPOCHS
    q = BATCH / DATASET_SIZE

    print(f"dataset {DATASET_SIZE:,} examples, batch {BATCH}, "
          f"{steps:,} steps, sampling rate q = {q:.2e}, delta = {DELTA:g}")
    print()

    rows = []
    for target in (0.5, 1.0, 2.0, 4.0, 8.0):
        sigma = noise_for_budget(target, steps, q)
        achieved = epsilon_after(sigma, steps, q)
        rows.append([target, sigma, achieved])
    print(format_table(
        ["target epsilon", "required sigma", "achieved epsilon"], rows,
        title="Noise multiplier needed for a one-epoch budget",
    ))
    print()

    sigma = noise_for_budget(1.0, steps, q)
    checkpoints = np.linspace(steps // 10, steps, 10, dtype=int)
    rows = [
        [int(s), epsilon_after(sigma, int(s), q)] for s in checkpoints
    ]
    print(format_table(
        ["steps", "epsilon"], rows,
        title=f"Budget trajectory at sigma = {sigma:.2f}",
    ))
    print()

    # LazyDP's accounting is identical to DP-SGD's: same mechanism, same
    # count of applications — only the noise *placement* changes.
    eager = RDPAccountant()
    lazy = RDPAccountant()
    for _ in range(500):
        eager.step(sigma, q)
        lazy.step(sigma, q)   # LazyDP records the very same steps
    assert eager.get_epsilon(DELTA) == lazy.get_epsilon(DELTA)
    print(f"after 500 steps: eager eps = {eager.get_epsilon(DELTA):.4f}, "
          f"LazyDP eps = {lazy.get_epsilon(DELTA):.4f} (identical)")


if __name__ == "__main__":
    main()
