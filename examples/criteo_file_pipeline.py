"""Production-shaped pipeline: DAC files, checkpointing, private release.

Walks the full operational story a team deploying LazyDP would live:

1. ingest a Criteo-DAC-format click log (synthesised here, same format
   as the Kaggle dataset the paper uses in Section 7.3),
2. train privately with LazyDP, checkpointing mid-run,
3. publish a *flushed* model snapshot mid-training without disturbing the
   lazy schedule (``export_private_model``),
4. simulate a crash: restore the checkpoint and finish training,
5. verify the resumed run matches an uninterrupted one bit-for-bit.

Run:  python examples/criteo_file_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import configs
from repro.session import ExecutionPlan, TrainSession
from repro.data import (
    CriteoFileDataset,
    DataLoader,
    LookaheadLoader,
    SkewSpec,
    write_synthetic_criteo,
)
from repro.lazydp.checkpoint import (
    export_private_model,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn import DLRM
from repro.train import DPConfig

TOTAL_ITERATIONS = 8
CHECKPOINT_AT = 4
BATCH = 64


def build_trainer(config):
    model = DLRM(config, seed=11)
    session = TrainSession.build(
        model, DPConfig(), ExecutionPlan.from_spec("ans=off"), noise_seed=22
    )
    trainer = session.trainer
    trainer.expected_batch_size = BATCH
    return model, trainer


def drive(trainer, entries, start, stop):
    for index, batch, upcoming in entries[start:stop]:
        trainer.train_step(index + 1, batch, upcoming)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lazydp_pipeline_"))

    # -- 1. ingest -------------------------------------------------------
    log_path = workdir / "clicks.tsv"
    write_synthetic_criteo(
        log_path, num_examples=800, seed=1,
        skew=SkewSpec(kind="zipf", exponent=1.2),
    )
    config = configs.DLRMConfig(
        name="criteo-pipeline",
        dense_features=13,
        bottom_mlp=(32, 16),
        embedding_dim=16,
        table_rows=(512,) * 26,
        lookups_per_table=1,
        top_mlp=(32, 1),
    )
    dataset = CriteoFileDataset(log_path, config)
    loader = DataLoader(dataset, batch_size=BATCH,
                        num_batches=TOTAL_ITERATIONS, seed=2)
    entries = list(LookaheadLoader(loader))
    print(f"ingested {len(dataset)} examples from {log_path.name} "
          f"({config.num_tables} hashed tables x {config.table_rows[0]} rows)")

    # -- 2. train + checkpoint --------------------------------------------
    model, trainer = build_trainer(config)
    drive(trainer, entries, 0, CHECKPOINT_AT)
    checkpoint_path = workdir / "step4.npz"
    save_checkpoint(checkpoint_path, trainer, iteration=CHECKPOINT_AT)
    print(f"checkpointed at iteration {CHECKPOINT_AT} "
          f"-> {checkpoint_path.name} "
          f"({checkpoint_path.stat().st_size / 1024:.0f} KiB)")

    # -- 3. mid-run private release ----------------------------------------
    released = export_private_model(trainer, iteration=CHECKPOINT_AT)
    table0 = model.embeddings[0].table
    pending_live = trainer.engine.histories[0].pending_rows(CHECKPOINT_AT)
    moved_in_release = np.count_nonzero(
        ~np.all(released[table0.name] == table0.data, axis=1)
    )
    print(f"released snapshot: {moved_in_release} rows of table 0 were "
          "caught up for release; live trainer still defers "
          f"{pending_live.size} rows (schedule untouched)")

    # -- 4. crash + resume ---------------------------------------------------
    resumed_model, resumed_trainer = build_trainer(config)
    start_iteration = load_checkpoint(checkpoint_path, resumed_trainer)
    resumed_trainer._last_noise_std = DPConfig().noise_std(BATCH)
    drive(resumed_trainer, entries, start_iteration, TOTAL_ITERATIONS)
    resumed_trainer.finalize(TOTAL_ITERATIONS)

    # -- 5. verify against the uninterrupted run ------------------------------
    straight_model, straight_trainer = build_trainer(config)
    drive(straight_trainer, entries, 0, TOTAL_ITERATIONS)
    straight_trainer.finalize(TOTAL_ITERATIONS)

    worst = max(
        float(np.max(np.abs(
            straight_model.parameters()[name].data
            - resumed_model.parameters()[name].data
        )))
        for name in straight_model.parameters()
    )
    print(f"resumed-vs-uninterrupted max parameter difference: {worst:.2e}")
    assert worst < 1e-12
    print("crash-recovery equivalence verified.")


if __name__ == "__main__":
    main()
