"""Private ads CTR training: the workload the paper's introduction motivates.

Trains the same click-through-rate model on the same power-law
(Criteo-like) trace with four algorithms and compares:

* training throughput (the paper's subject),
* final loss (utility is preserved — all DP variants add the same noise),
* what an adversary inspecting the final embedding tables learns
  (the EANA leak vs. LazyDP's DP-SGD-equivalent protection).

Run:  python examples/ads_ctr_training.py
"""

import numpy as np

from repro import configs
from repro.testing import trainer_for
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset, paper_skew_spec
from repro.nn import DLRM
from repro.privacy import audit_untouched_rows
from repro.train import DPConfig

ROWS = 20000
BATCH = 256
ITERATIONS = 12


def train(algorithm: str, config, skew):
    model = DLRM(config, seed=7)
    dataset = SyntheticClickDataset(config, seed=3, skew=skew)
    loader = DataLoader(dataset, batch_size=BATCH, num_batches=ITERATIONS,
                        seed=5)
    dp = DPConfig(noise_multiplier=1.0, max_grad_norm=1.0, learning_rate=0.05)
    trainer = trainer_for(algorithm, model, dp, noise_seed=99)
    result = trainer.fit(loader)
    return model, result, loader


def run_audit(model, config, loader) -> str:
    """The paper's Section 2.5 attack against table 0."""
    reference = DLRM(config, seed=7)
    accessed = np.unique(np.concatenate([
        batch.accessed_rows(0) for batch in loader
    ]))
    result = audit_untouched_rows(
        reference.embeddings[0].table.data,
        model.embeddings[0].table.data,
        accessed,
    )
    if result.leaks:
        return ("LEAKS access set "
                f"({result.true_positives} rows exposed)")
    return "protected (every row perturbed)"


def main() -> None:
    config = configs.small_dlrm(rows=ROWS)
    # High-skew trace: 90% of accesses on 0.6% of rows, like production
    # RecSys traffic (paper Section 7.4).
    skew = paper_skew_spec("high", ROWS)

    rows = []
    baseline_time = None
    for algorithm in ("sgd", "eana", "lazydp", "dpsgd_f"):
        model, result, loader = train(algorithm, config, skew)
        per_iter = result.wall_time / result.iterations
        if baseline_time is None:
            baseline_time = per_iter
        audit = "n/a (not private)" if algorithm == "sgd" else (
            run_audit(model, config, loader)
        )
        rows.append([
            algorithm,
            per_iter * 1e3,
            per_iter / baseline_time,
            result.final_loss,
            result.epsilon if result.epsilon is not None else None,
            audit,
        ])

    print(format_table(
        ["algorithm", "ms/iter", "x SGD", "final loss", "epsilon",
         "final-model audit"],
        rows,
        title="Private CTR training on a high-skew trace "
              f"({ROWS} rows/table, batch {BATCH})",
    ))
    print()
    print("Reading the table: EANA is fast but its final model exposes")
    print("exactly which features appeared in training data; LazyDP matches")
    print("DP-SGD's protection at a fraction of DP-SGD(F)'s cost.")


if __name__ == "__main__":
    main()
