"""Figure 7, executable: one embedding row under SGD / DP-SGD / LazyDP.

The paper's correctness argument is a timeline diagram (Figure 7): a row
accessed only at iterations 4 and 7 receives the same total noise whether
noise is applied eagerly (every iteration) or lazily (batched just before
each access).  This script replays that exact schedule with real noise
values and prints the three timelines, then verifies the paper's claim —
the value *visible at each access* and the final value are identical.

Run:  python examples/equivalence_walkthrough.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.lazydp import ANSEngine, HistoryTable
from repro.rng import NoiseStream

ITERATIONS = 8
ACCESS_AT = (4, 7)           # the row is gathered at these iterations
DIM = 4
STD = 0.1                    # per-iteration noise std (sigma * C / B)
GRADIENT = 0.05              # stand-in gradient applied at access time
TABLE, ROW = 0, 17


def eager_schedule(stream: NoiseStream):
    """Baseline DP-SGD: noise every iteration, gradient at accesses."""
    value = np.zeros(DIM)
    timeline = []
    for iteration in range(1, ITERATIONS + 1):
        timeline.append((iteration, value.copy(),
                         "access+grad" if iteration in ACCESS_AT else ""))
        if iteration in ACCESS_AT:
            value = value - GRADIENT          # the gradient update
        value = value - stream.row_noise(     # the dense noise update
            TABLE, np.array([ROW]), iteration, DIM, std=STD
        )[0]
    return timeline, value


def lazy_schedule(stream: NoiseStream):
    """LazyDP: noise deferred until the iteration before each access."""
    value = np.zeros(DIM)
    history = HistoryTable(ROW + 1)
    engine = ANSEngine(stream, enabled=False)  # exact mode: same values
    timeline = []
    for iteration in range(1, ITERATIONS + 1):
        timeline.append((iteration, value.copy(),
                         "access+grad" if iteration in ACCESS_AT else ""))
        if iteration in ACCESS_AT:
            value = value - GRADIENT
        if iteration + 1 in ACCESS_AT:        # lookahead says: catch up now
            rows = np.array([ROW])
            delays = history.delays(rows, iteration)
            history.mark_updated(rows, iteration)
            value = value - engine.catchup_noise(
                TABLE, rows, delays, iteration, DIM, std=STD
            )[0]
    # Terminal flush: the released model carries the full noise history.
    rows = np.array([ROW])
    delays = history.delays(rows, ITERATIONS)
    value = value - engine.catchup_noise(
        TABLE, rows, delays, ITERATIONS, DIM, std=STD
    )[0]
    return timeline, value


def main() -> None:
    stream = NoiseStream(seed=2024)
    eager_timeline, eager_final = eager_schedule(stream)
    lazy_timeline, lazy_final = lazy_schedule(stream)

    rows = []
    for (it, eager_value, marker), (_, lazy_value, _) in zip(
        eager_timeline, lazy_timeline
    ):
        rows.append([
            it,
            f"{eager_value[0]:+.4f}",
            f"{lazy_value[0]:+.4f}",
            "==" if np.allclose(eager_value, lazy_value) else "differs",
            marker,
        ])
    print(format_table(
        ["iter", "DP-SGD value[0]", "LazyDP value[0]", "visible", "event"],
        rows,
        title="Figure 7 replay: first coordinate of the row, start of "
              "each iteration",
    ))
    print()
    print("Rows marked 'differs' are iterations where LazyDP is lazily")
    print("behind — legal, because the row is not gathered there.  At both")
    print("access iterations (4, 7) the values agree exactly.")

    for it, eager_value, _ in eager_timeline:
        if it in ACCESS_AT:
            lazy_value = lazy_timeline[it - 1][1]
            assert np.allclose(eager_value, lazy_value, atol=1e-12)
    assert np.allclose(eager_final, lazy_final, atol=1e-12)
    print()
    print(f"final value after flush:  DP-SGD {eager_final[0]:+.6f}  ==  "
          f"LazyDP {lazy_final[0]:+.6f}")
    print("equivalence verified to 1e-12.")


if __name__ == "__main__":
    main()
