"""Quickstart: train a private DLRM with LazyDP in ~20 lines.

Mirrors the paper's Figure 9(a) user interface: build a model, a data
loader, wrap them with ``make_private``, train, and read off the privacy
budget spent.

Run:  python examples/quickstart.py
"""

from repro import configs, make_private
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM


def main() -> None:
    # A runnable-scale DLRM: 8 tables x 4096 rows, 32-dim embeddings.
    config = configs.small_dlrm(rows=4096)
    model = DLRM(config, seed=0)

    dataset = SyntheticClickDataset(config, seed=0)
    loader = DataLoader(dataset, batch_size=256, num_batches=30, seed=1)

    # The LazyDP wrapper (paper Figure 9a): same hyper-parameters as the
    # Opacus call it replaces.
    session = make_private(
        model,
        loader,
        noise_multiplier=1.1,
        max_gradient_norm=1.0,
        learning_rate=0.05,
        delta=1e-5,
    )

    result = session.fit()

    print(f"trained {result.iterations} iterations "
          f"in {result.wall_time:.2f}s")
    print(f"loss: {result.mean_losses[0]:.4f} -> {result.final_loss:.4f}")
    print(f"privacy spent: epsilon = {session.epsilon():.3f} "
          f"at delta = {session.trainer.config.delta:g}")
    overhead = session.trainer.timer.lazydp_overhead_total()
    print(f"LazyDP bookkeeping overhead: {overhead * 1e3:.1f} ms total "
          f"({overhead / result.wall_time:.1%} of wall time)")

    # At production scale the embedding engine shards: partition each
    # table (repro.shard, or `--num-shards/--partition/--executor` on
    # `python -m repro train`) and the lazy update runs per shard in
    # parallel — bitwise identical released parameters, verified in
    # tests/test_shard_equivalence.py.
    #
    #   from repro.shard import ShardedLazyDPTrainer
    #   trainer = ShardedLazyDPTrainer(model, dp_config, num_shards=4,
    #                                  partition="frequency",
    #                                  executor="threads")


if __name__ == "__main__":
    main()
