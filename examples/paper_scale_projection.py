"""Project the paper's full-scale results with the calibrated perf model.

The 96 GB MLPerf DLRM does not fit on a laptop, but the performance model
(calibrated once against the paper's measured kernel characteristics,
Figure 6) regenerates every evaluation figure at paper scale.  This
script prints the headline numbers and the stage breakdowns behind them.

Run:  python examples/paper_scale_projection.py
"""

from repro import configs
from repro.bench.experiments import figure10, figure12, figure13a
from repro.bench.reporting import format_table
from repro.perfmodel import (
    iteration_breakdown,
    iteration_energy_joules,
    paper_system,
)


def stage_table(algorithm: str, config, batch: int = 2048) -> str:
    breakdown = iteration_breakdown(algorithm, config, batch)
    rows = [
        [stage, seconds * 1e3, seconds / breakdown.total]
        for stage, seconds in breakdown.stages.items()
    ]
    rows.append(["TOTAL", breakdown.total * 1e3, 1.0])
    return format_table(
        ["stage", "ms", "fraction"], rows,
        title=f"{algorithm} @ {config.name}, batch {batch}",
    )


def main() -> None:
    hw = paper_system()
    config = configs.mlperf_dlrm()

    print("=" * 72)
    print("Headline (paper Section 7.1: 119x average speedup, 85-155x)")
    print("=" * 72)
    result = figure10()
    print(result.table())
    print()

    print("Where DP-SGD's time goes at 96 GB:")
    print(stage_table("dpsgd_f", config))
    print()
    print("Where LazyDP's time goes at 96 GB:")
    print(stage_table("lazydp", config))
    print()

    print("=" * 72)
    print("Scaling out: table-size sensitivity (paper Figure 13a)")
    print("=" * 72)
    print(figure13a().table())
    print()

    print("=" * 72)
    print("Energy (paper Figure 12: ~155x saving)")
    print("=" * 72)
    energy = figure12()
    print(energy.table())
    print()

    lazy = iteration_breakdown("lazydp", config, 2048)
    eager = iteration_breakdown("dpsgd_f", config, 2048)
    print(f"modelled speedup   : {eager.total / lazy.total:.0f}x "
          "(paper: 119x average)")
    print("modelled energy win: "
          f"{iteration_energy_joules(eager, hw) / iteration_energy_joules(lazy, hw):.0f}x "
          "(paper: 155x average)")


if __name__ == "__main__":
    main()
